"""The span-tree profiler: memory attribution, exporters, aborted spans.

Covers the PR 6 profiling subsystem end to end:

* span-tree accounting — parent links, preorder ``walk``, self vs
  cumulative wall time;
* aborted spans — a raising query marks its open spans and
  ``Tracer.close`` flushes them, so a crash still yields a usable trace;
* :class:`repro.obs.MemoryAttributor` — per-span ``self_alloc_bytes``
  sums exactly to the root's net allocation, and the named spans account
  for >= 90% of the traced peak on the chain TC workload;
* exporters — Chrome Trace Event JSON (structure golden: stable names,
  phases, fixed pid/tid) and collapsed-stack flamegraphs;
* the CLI surface: ``profile --memory --format chrome-trace``,
  ``--format flame``, ``--from`` re-export, and the partial-trace flush
  on mid-evaluation failure.
"""

import json

import pytest

from repro.cli import main
from repro.core.evaluation import evaluate
from repro.obs import (
    ExportError,
    Tracer,
    attribution_report,
    chrome_trace,
    collapsed_stacks,
    render_tree,
    trace_from_json,
    trace_to_json,
    tracer_from_document,
    use_tracer,
)
from repro.workloads import chain_graph, transitive_closure_query


def _traced_tc(n=8, memory=False):
    """Evaluate chain TC under a fresh tracer; returns (tracer, answer)."""
    query = transitive_closure_query("U")
    inst = chain_graph(n)
    tracer = Tracer(memory=memory)
    with use_tracer(tracer):
        answer = evaluate(query, inst)
    tracer.close()
    return tracer, answer


class TestSpanTree:
    def test_parent_links_and_walk_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                with tracer.span("d"):
                    pass
        tracer.close()
        names = [span.name for span in tracer.root.walk()]
        assert names == ["trace", "a", "b", "c", "d"]
        by_name = {span.name: span for span in tracer.root.walk()}
        assert by_name["a"].parent is tracer.root
        assert by_name["b"].parent is by_name["a"]
        assert by_name["d"].parent is by_name["c"]
        assert tracer.root.parent is None

    def test_self_seconds_excludes_children(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        tracer.close()
        outer = tracer.root.children[0]
        inner = outer.children[0]
        assert outer.self_seconds == pytest.approx(
            outer.duration - inner.duration)
        assert inner.self_seconds == pytest.approx(inner.duration)
        assert tracer.root.self_seconds >= 0.0

    def test_aborted_span_marked_and_rendered(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        tracer.close()
        outer = tracer.root.children[0]
        assert outer.status == "aborted"
        assert outer.children[0].status == "aborted"
        assert outer.end is not None
        rendered = render_tree(tracer, times=False)
        assert "outer [aborted]" in rendered
        assert "  inner [aborted]" in rendered

    def test_close_flushes_still_open_spans(self):
        tracer = Tracer()
        tracer.span("left-open").__enter__()  # simulate a crash mid-span
        tracer.close()
        span = tracer.root.children[0]
        assert span.status == "aborted"
        assert span.end is not None
        assert tracer.root.end is not None


class TestMemoryAttribution:
    def test_self_alloc_sums_exactly_to_root(self):
        tracer, _ = _traced_tc(memory=True)
        spans = list(tracer.root.walk())
        assert all(span.alloc_bytes is not None for span in spans)
        assert (sum(span.self_alloc_bytes for span in spans)
                == tracer.root.alloc_bytes)

    def test_parent_peak_never_below_child_peak(self):
        tracer, _ = _traced_tc(memory=True)
        for span in tracer.root.walk():
            for child in span.children:
                assert span.peak_bytes >= child.peak_bytes

    def test_coverage_on_chain_tc(self):
        """In-process sanity: most of the traced peak lands in named
        spans.  (The >= 0.9 acceptance figure is checked cold-process in
        :class:`TestCliProfiler` — a warmed evaluator retains less per
        run, which lowers the net-allocation floor of the estimate.)"""
        tracer, answer = _traced_tc(n=8, memory=True)
        assert len(answer) == 8 * 7 // 2
        report = attribution_report(tracer)
        assert report["traced_peak_bytes"] > 0
        assert report["coverage"] >= 0.8
        # Which evaluation span retains most depends on how warm the
        # evaluator's caches are; it is always one of the two.
        assert report["spans"][0]["name"] in ("fixpoint", "query")

    def test_plain_trace_has_no_attribution(self):
        tracer, _ = _traced_tc(memory=False)
        assert tracer.root.alloc_bytes is None
        with pytest.raises(ValueError, match="no memory attribution"):
            attribution_report(tracer)

    def test_memory_fields_round_trip_through_json(self):
        tracer, _ = _traced_tc(memory=True)
        document = trace_to_json(tracer)
        rebuilt = trace_from_json(document)
        assert trace_to_json(rebuilt) == document
        assert rebuilt.root.alloc_bytes == tracer.root.alloc_bytes
        assert rebuilt.root.peak_bytes == tracer.root.peak_bytes

    def test_plain_trace_json_unchanged(self):
        """Memory fields are emitted only when set: a plain trace's
        document carries none of them (schema-1 compatibility)."""
        tracer, _ = _traced_tc(memory=False)

        def walk(doc):
            yield doc
            for child in doc["children"]:
                yield from walk(child)

        for span_doc in walk(trace_to_json(tracer)["trace"]):
            assert "alloc_bytes" not in span_doc
            assert "status" not in span_doc


class TestChromeTrace:
    def test_structure_golden(self):
        """Everything except the timestamps is pinned: names, phases,
        categories, fixed pid/tid, metadata events."""
        tracer, _ = _traced_tc(memory=True)
        document = chrome_trace(tracer)
        json.dumps(document)  # must be JSON-safe
        events = document["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert [(e["name"], e["args"]["name"]) for e in metadata] == [
            ("process_name", "repro"), ("thread_name", "evaluate")]
        complete = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in complete] == ["trace", "query", "fixpoint"]
        for event in complete:
            assert event["cat"] == "span"
            assert event["pid"] == 1 and event["tid"] == 1
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
            assert event["args"]["alloc_bytes"] is not None
        instants = [e for e in events if e["ph"] == "i"]
        assert instants, "trace events must export as instants"
        assert all(e["s"] == "t" for e in instants)
        assert document["otherData"]["counters"]["ifp.stages"] == 8

    def test_nesting_encoded_in_timestamps(self):
        tracer, _ = _traced_tc()
        complete = [e for e in chrome_trace(tracer)["traceEvents"]
                    if e["ph"] == "X"]
        by_name = {e["name"]: e for e in complete}
        trace, query = by_name["trace"], by_name["query"]
        fixpoint = by_name["fixpoint"]
        assert trace["ts"] == 0.0
        assert trace["ts"] <= query["ts"]
        assert query["ts"] + query["dur"] <= trace["ts"] + trace["dur"] + 1e-6
        assert fixpoint["ts"] >= query["ts"]

    def test_aborted_status_rides_in_args(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        events = chrome_trace(tracer)["traceEvents"]
        doomed = next(e for e in events if e.get("name") == "doomed")
        assert doomed["args"]["status"] == "aborted"


class TestFlamegraph:
    def test_time_stacks(self):
        tracer, _ = _traced_tc()
        lines = collapsed_stacks(tracer).splitlines()
        paths = [line.rsplit(" ", 1)[0] for line in lines]
        assert paths == ["trace", "trace;query", "trace;query;fixpoint"]
        assert all(int(line.rsplit(" ", 1)[1]) >= 0 for line in lines)

    def test_alloc_stacks_require_memory(self):
        tracer, _ = _traced_tc(memory=False)
        with pytest.raises(ExportError, match="no memory attribution"):
            collapsed_stacks(tracer, metric="alloc")
        traced, _ = _traced_tc(memory=True)
        lines = collapsed_stacks(traced, metric="alloc").splitlines()
        assert any(int(line.rsplit(" ", 1)[1]) > 0 for line in lines)

    def test_unknown_metric_rejected(self):
        tracer, _ = _traced_tc()
        with pytest.raises(ExportError, match="unknown flame metric"):
            collapsed_stacks(tracer, metric="cycles")


class TestTracerFromDocument:
    def test_schema1_round_trip(self):
        tracer, _ = _traced_tc(memory=True)
        document = trace_to_json(tracer)
        rebuilt = tracer_from_document(document)
        assert chrome_trace(rebuilt) == chrome_trace(tracer)

    def test_legacy_document_rejected(self):
        legacy = {"counters": {}, "dropped_events": 0,
                  "trace": {"name": "trace", "attrs": {}, "start": 123.4,
                            "end": 125.0, "events": [], "children": []}}
        with pytest.raises(ExportError, match="legacy unversioned"):
            tracer_from_document(legacy)

    def test_non_trace_document_rejected(self):
        with pytest.raises(ExportError, match="not a trace document"):
            tracer_from_document({"schema": 1})
        with pytest.raises(ExportError, match="not a trace document"):
            tracer_from_document([1, 2, 3])


TC_QUERY_TEXT = (
    "{[x:{U}, y:{U}] | ifp[S(x:{U}, y:{U})](G(x,y) or "
    "exists z:{U} (S(x,z) and G(z,y)))(x, y)}"
)


@pytest.fixture
def graph_file(tmp_path):
    from repro.objects.io import instance_to_json
    from repro.workloads import singleton_chain

    path = tmp_path / "graph.json"
    path.write_text(json.dumps(instance_to_json(singleton_chain("abc"))))
    return str(path)


class TestCliProfiler:
    def test_memory_chrome_trace_export(self, graph_file, capsys):
        status = main(["profile", graph_file, TC_QUERY_TEXT,
                       "--memory", "--format", "chrome-trace"])
        assert status == 0
        document = json.loads(capsys.readouterr().out)
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in complete] == [
            "trace", "load_instance", "parse_query",
            "range_restricted", "query", "fixpoint"]
        assert all("self_alloc_bytes" in e["args"] for e in complete)

    def test_memory_text_table(self, graph_file, capsys):
        status = main(["profile", graph_file, TC_QUERY_TEXT,
                       "--memory", "--no-times"])
        assert status == 0
        out = capsys.readouterr().out
        assert "== memory ==" in out
        assert "traced peak" in out
        assert "% attributed to named spans" in out

    def test_flame_export(self, graph_file, capsys):
        status = main(["profile", graph_file, TC_QUERY_TEXT,
                       "--format", "flame"])
        assert status == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("trace ")
        assert any(line.startswith("trace;range_restricted;query;fixpoint ")
                   for line in lines)

    def test_from_reexports_saved_trace(self, graph_file, tmp_path, capsys):
        status = main(["profile", graph_file, TC_QUERY_TEXT, "--json"])
        assert status == 0
        saved = tmp_path / "trace.json"
        saved.write_text(capsys.readouterr().out)
        status = main(["profile", "--from", str(saved),
                       "--format", "chrome-trace"])
        assert status == 0
        document = json.loads(capsys.readouterr().out)
        assert any(e["ph"] == "X" for e in document["traceEvents"])

    def test_partial_trace_on_midquery_failure(self, graph_file, capsys):
        """Satellite 2: a query that dies mid-evaluation still yields
        the partial trace (open spans flushed as aborted) on stderr."""
        with pytest.raises(Exception, match="cap 2"):
            main(["profile", graph_file, TC_QUERY_TEXT,
                  "--mode", "active", "--max-domain", "2", "--no-times"])
        err = capsys.readouterr().err
        assert "partial trace" in err
        assert "query" in err and "[aborted]" in err

    def test_cold_process_coverage_acceptance(self, tmp_path):
        """The ISSUE 6 acceptance figure, measured the way users hit it:
        a fresh interpreter running ``repro profile --memory`` on a
        chain_graph fixpoint query attributes >= 90% of the tracemalloc
        peak to named spans."""
        import os
        import subprocess
        import sys

        import repro
        from repro.objects.io import instance_to_json
        from repro.workloads import chain_graph

        graph = tmp_path / "chain8.json"
        graph.write_text(json.dumps(instance_to_json(chain_graph(8))))
        flat_tc = ("{[x:U, y:U] | ifp[S(x:U, y:U)](G(x,y) or "
                   "exists z:U (S(x,z) and G(z,y)))(x, y)}")
        src = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "profile", str(graph),
             flat_tc, "--memory", "--json"],
            capture_output=True, text=True, env=env, timeout=120)
        assert proc.returncode == 0, proc.stderr
        tracer = tracer_from_document(json.loads(proc.stdout))
        report = attribution_report(tracer)
        assert report["coverage"] >= 0.9

    def test_memory_json_carries_attribution(self, graph_file, capsys):
        status = main(["profile", graph_file, TC_QUERY_TEXT,
                       "--memory", "--json"])
        assert status == 0
        document = json.loads(capsys.readouterr().out)
        assert document["trace"]["alloc_bytes"] is not None
        assert document["trace"]["peak_bytes"] > 0
