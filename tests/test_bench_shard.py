"""The sharded parallel bench runner (PR 5 tentpole).

The central property, stated by the issue and checked here with
hypothesis: for *any* subset of suites and *any* ``--jobs`` in
{1, 2, 4}, the merged observatory document is byte-identical to the
serial one apart from wall-clock-derived fields (which
:func:`repro.bench.shard.strip_timing` removes).  Alongside it: failure
isolation (a raising worker marks only its own points failed), timeout
degradation to a flagged partial document, and the serial/sharded
equivalence of a real registry suite.

Worker processes resolve suites by name through the registry, so the
toy suites these tests register at runtime are only visible to workers
under the ``fork`` start method; pool-backed tests skip elsewhere.
"""

from __future__ import annotations

import json
import multiprocessing
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench import (
    BenchError,
    SUITES,
    Suite,
    failed_point,
    point_specs,
    run_suites,
    run_tasks,
    strip_timing,
)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="runtime-registered suites need the fork "
                         "start method to reach pool workers")


def _run_square(n: int, strategy: str) -> dict:
    from repro.obs import get_tracer

    factor = 1 if strategy == "naive" else 2
    get_tracer().count("toy.rows", factor * n * n)
    return {"checksum": n * n}


def _run_cube(n: int, strategy: str) -> dict:
    from repro.obs import get_tracer

    get_tracer().count("toy.rows", n**3)
    get_tracer().observe("toy.sizes", n)
    return {"checksum": n**3}


def _run_linear(n: int, strategy: str) -> dict:
    from repro.obs import get_tracer

    get_tracer().count("toy.rows", n)
    return {"checksum": n}


def _run_fragile(n: int, strategy: str) -> dict:
    if n == 3:
        raise ValueError(f"injected failure at n={n}")
    return _run_linear(n, strategy)


def _run_sleepy(n: int, strategy: str) -> dict:
    if n == 3:
        time.sleep(60.0)
    return _run_linear(n, strategy)


def _run_beacon_then_hang(n: int, strategy: str) -> dict:
    """Counts and emits an event (flushing a counter snapshot onto the
    worker's stream) *before* wedging — the shape of a real fixpoint
    that heartbeats per stage and then hits a pathological stage."""
    from repro.obs import get_tracer

    tracer = get_tracer()
    tracer.count("toy.rows", n)
    tracer.event("beacon", n=n)
    if n == 3:
        time.sleep(60.0)
    return {"checksum": n}


def _run_beacon_then_raise(n: int, strategy: str) -> dict:
    from repro.obs import get_tracer

    tracer = get_tracer()
    tracer.count("toy.rows", n)
    tracer.event("beacon", n=n)
    if n == 3:
        raise ValueError(f"injected failure at n={n}")
    return {"checksum": n}


TOY_SUITES = {
    "toy-square": Suite(
        name="toy-square", title="squares", sizes=(2, 3, 4),
        strategies=("naive", "seminaive"), run=_run_square, agree=True),
    "toy-cube": Suite(
        name="toy-cube", title="cubes", sizes=(2, 3, 4, 5),
        strategies=("seminaive",), run=_run_cube, agree=False),
    "toy-linear": Suite(
        name="toy-linear", title="lines", sizes=(1, 2, 3),
        strategies=("seminaive",), run=_run_linear, agree=False),
    "toy-fragile": Suite(
        name="toy-fragile", title="raises at n=3", sizes=(1, 2, 3, 4),
        strategies=("seminaive",), run=_run_fragile, agree=False),
    "toy-sleepy": Suite(
        name="toy-sleepy", title="hangs at n=3", sizes=(1, 2, 3, 4),
        strategies=("seminaive",), run=_run_sleepy, agree=False),
    "toy-beacon-hang": Suite(
        name="toy-beacon-hang", title="streams then hangs at n=3",
        sizes=(1, 2, 3), strategies=("seminaive",),
        run=_run_beacon_then_hang, agree=False),
    "toy-beacon-raise": Suite(
        name="toy-beacon-raise", title="streams then raises at n=3",
        sizes=(1, 2, 3), strategies=("seminaive",),
        run=_run_beacon_then_raise, agree=False),
}


@pytest.fixture(scope="module", autouse=True)
def _register_toys():
    """Pool workers look suites up in the registry, so the toys must be
    in ``SUITES`` (not just passed as objects) for sharded runs."""
    SUITES.update(TOY_SUITES)
    yield
    for name in TOY_SUITES:
        SUITES.pop(name, None)


def _canonical(document: dict) -> str:
    return json.dumps(strip_timing(document), sort_keys=True)


class TestShardProperty:
    @needs_fork
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        names=st.lists(
            st.sampled_from(["toy-square", "toy-cube", "toy-linear"]),
            min_size=1, max_size=3, unique=True),
        jobs=st.sampled_from([1, 2, 4]),
    )
    def test_sharded_document_identical_to_serial_modulo_timing(
            self, names, jobs):
        suites = [SUITES[name] for name in names]
        serial = run_suites(suites, jobs=1)
        sharded = run_suites(suites, jobs=jobs)
        assert _canonical(sharded) == _canonical(serial)

    @needs_fork
    def test_merge_order_is_declaration_order_not_completion_order(self):
        """toy-cube's points take as long as toy-linear's, but the
        document lists suites and points exactly as declared."""
        suites = [SUITES["toy-cube"], SUITES["toy-linear"]]
        document = run_suites(suites, jobs=4)
        assert list(document["suites"]) == ["toy-cube", "toy-linear"]
        cube_points = document["suites"]["toy-cube"]["points"]
        assert [p["n"] for p in cube_points] == [2, 3, 4, 5]


class TestFailureIsolation:
    @needs_fork
    def test_raising_worker_fails_only_its_own_point(self):
        document = run_suites([SUITES["toy-fragile"],
                               SUITES["toy-linear"]], jobs=2)
        fragile = document["suites"]["toy-fragile"]
        failed = [p for p in fragile["points"] if p.get("failed")]
        assert [(p["n"], p["strategy"]) for p in failed] == \
            [(3, "seminaive")]
        assert "injected failure" in failed[0]["error"]
        ok = [p for p in fragile["points"] if not p.get("failed")]
        assert [p["n"] for p in ok] == [1, 2, 4]
        assert all(p["checksum"] == p["n"] for p in ok)
        # The healthy suite is untouched, the document is flagged.
        linear = document["suites"]["toy-linear"]
        assert not any(p.get("failed") for p in linear["points"])
        assert document["partial"] is True
        assert fragile["failed_points"] == [
            {"n": 3, "strategy": "seminaive",
             "error": "ValueError: injected failure at n=3"}]

    @needs_fork
    def test_partial_document_fails_the_run(self):
        from repro.bench import document_failures

        document = run_suites([SUITES["toy-fragile"]], jobs=2)
        failures = document_failures(document)
        assert any("injected failure" in failure for failure in failures)

    @needs_fork
    def test_timeout_marks_point_failed_and_run_degrades(self):
        document = run_suites([SUITES["toy-sleepy"]], jobs=2,
                              point_timeout=1.0)
        points = document["suites"]["toy-sleepy"]["points"]
        by_n = {p["n"]: p for p in points}
        assert by_n[3]["failed"] and "timed out" in by_n[3]["error"]
        assert all(not by_n[n].get("failed") for n in (1, 2, 4))
        assert document["partial"] is True


class TestRealRegistrySuite:
    def test_jobs4_matches_serial_on_seminaive_smoke(self):
        """A declared suite end-to-end through the pool: identical to
        serial apart from timing, including fits being stripped and
        counters surviving."""
        suite = SUITES["seminaive-smoke"]
        serial = run_suites([suite], sizes=(8, 16))
        sharded = run_suites([suite], sizes=(8, 16), jobs=4)
        assert _canonical(sharded) == _canonical(serial)
        point = sharded["suites"]["seminaive-smoke"]["points"][0]
        assert point["counters"]["datalog.rows_derived"] > 0


class TestResourceTelemetry:
    """Subprocess isolation is what makes per-point RSS meaningful: each
    point gets a fresh process, so ``getrusage`` peak RSS is *its* high
    -water mark, not the accumulated maximum of everything run before."""

    @needs_fork
    def test_every_surviving_point_reports_rss_peak(self):
        document = run_suites([SUITES["toy-linear"]], jobs=2)
        points = document["suites"]["toy-linear"]["points"]
        assert points and not any(p.get("failed") for p in points)
        for point in points:
            # A CPython worker occupies at least a few MB.
            assert point["counters"]["space.rss_peak"] > 4 << 20

    @needs_fork
    def test_traced_peak_counter_mirrors_tracemalloc_field(self):
        document = run_suites([SUITES["toy-linear"]], jobs=2,
                              tracemalloc=True)
        for point in document["suites"]["toy-linear"]["points"]:
            assert point["counters"]["space.traced_peak"] == \
                point["tracemalloc_peak_bytes"]
            assert point["counters"]["space.traced_peak"] > 0

    @needs_fork
    def test_memory_attribution_rides_through_workers(self):
        document = run_suites([SUITES["seminaive-smoke"]], sizes=(8,),
                              jobs=2, memory=True)
        points = document["suites"]["seminaive-smoke"]["points"]
        assert points and not any(p.get("failed") for p in points)
        for point in points:
            assert point["counters"]["space.traced_peak"] > 0
            assert point["counters"]["space.rss_peak"] > 4 << 20

    @needs_fork
    def test_serial_run_records_no_rss(self):
        """RSS of a shared process would be cross-contaminated, so the
        serial path deliberately omits it."""
        document = run_suites([SUITES["toy-linear"]], jobs=1)
        for point in document["suites"]["toy-linear"]["points"]:
            assert "space.rss_peak" not in point["counters"]


class TestTelemetrySalvage:
    """Workers always stream their trace up the result pipe, so a point
    that times out or raises still degrades to *partial telemetry*
    (whatever counters reached the scheduler before death) instead of
    the empty placeholder the PR 5 runner left behind."""

    @needs_fork
    def test_timeout_killed_point_salvages_stream_counters(self):
        document = run_suites([SUITES["toy-beacon-hang"]], jobs=2,
                              point_timeout=1.0)
        points = document["suites"]["toy-beacon-hang"]["points"]
        by_n = {p["n"]: p for p in points}
        assert by_n[3]["failed"] and "timed out" in by_n[3]["error"]
        assert by_n[3]["partial_telemetry"] is True
        assert by_n[3]["counters"]["toy.rows"] == 3
        # Healthy points carry full telemetry, unflagged.
        assert not by_n[1].get("partial_telemetry")

    @needs_fork
    def test_raising_point_salvages_stream_counters(self):
        document = run_suites([SUITES["toy-beacon-raise"]], jobs=2)
        by_n = {p["n"]: p
                for p in document["suites"]["toy-beacon-raise"]["points"]}
        assert by_n[3]["failed"] and "injected failure" in by_n[3]["error"]
        assert by_n[3]["partial_telemetry"] is True
        assert by_n[3]["counters"]["toy.rows"] == 3

    @needs_fork
    def test_strip_timing_erases_salvaged_telemetry(self):
        """Serial runs have no worker stream to salvage from (a raising
        suite propagates in-process), so the byte-identity invariant
        demands strip_timing erase the salvage along with the other
        machine facts: a stripped failed point looks exactly like the
        bare placeholder."""
        from repro.bench import failed_point

        document = run_suites([SUITES["toy-beacon-raise"]], jobs=2)
        stripped = strip_timing(document)
        by_n = {p["n"]: p
                for p in stripped["suites"]["toy-beacon-raise"]["points"]}
        assert by_n[3]["counters"] == {}
        assert "partial_telemetry" not in by_n[3]
        placeholder = strip_timing(
            {"suites": {"s": {"points": [failed_point(
                3, "seminaive", by_n[3]["error"])]}}}
        )["suites"]["s"]["points"][0]
        assert by_n[3] == placeholder
        # The unstripped document keeps the salvage for humans.
        raw = document["suites"]["toy-beacon-raise"]["points"]
        assert {p["n"]: p for p in raw}[3]["partial_telemetry"] is True


class TestPlumbing:
    def test_point_specs_enumerates_declaration_order(self):
        suite = TOY_SUITES["toy-square"]
        assert point_specs(suite) == [
            (2, "naive"), (2, "seminaive"),
            (3, "naive"), (3, "seminaive"),
            (4, "naive"), (4, "seminaive"),
        ]

    def test_jobs_below_one_raises(self):
        with pytest.raises(BenchError, match="jobs"):
            run_suites([TOY_SUITES["toy-linear"]], jobs=0)

    def test_run_tasks_empty_is_empty(self):
        assert run_tasks([], jobs=4) == []

    def test_failed_point_shape_matches_measured_points(self):
        placeholder = failed_point(7, "seminaive", "boom")
        assert placeholder["failed"] is True
        for key in ("n", "strategy", "seconds", "checksum", "counters",
                    "histograms"):
            assert key in placeholder

    def test_strip_timing_removes_wall_clock_but_keeps_counters(self):
        document = run_suites([TOY_SUITES["toy-linear"]])
        stripped = strip_timing(document)
        suite_doc = stripped["suites"]["toy-linear"]
        assert "fits" not in suite_doc
        for point in suite_doc["points"]:
            assert "seconds" not in point
            assert point["counters"]["toy.rows"] == point["n"]
        # The original document is untouched (deep copy).
        original = document["suites"]["toy-linear"]
        assert "fits" in original
        assert all("seconds" in p for p in original["points"])

    def test_strip_timing_removes_machine_counters(self):
        """``space.rss_peak``/``space.traced_peak`` are machine facts
        like wall-clock: stripped so serial and sharded documents
        compare byte-identical."""
        document = {"suites": {"s": {"points": [{
            "n": 2, "strategy": "seminaive", "seconds": 0.5,
            "tracemalloc_peak_bytes": 999,
            "counters": {"toy.rows": 4, "space.rss_peak": 16 << 20,
                         "space.traced_peak": 999},
            "histograms": {},
        }]}}}
        point = strip_timing(document)["suites"]["s"]["points"][0]
        assert point["counters"] == {"toy.rows": 4}
        assert "seconds" not in point
        assert "tracemalloc_peak_bytes" not in point

    def test_strip_timing_keeps_counter_metric_gates(self):
        document = {"suites": {"s": {
            "points": [],
            "gates": [
                {"slow": "a", "fast": "b", "metric": "seconds",
                 "min_ratio": 2.0, "n": 4, "ratio": 3.0, "ok": True},
                {"slow": "a", "fast": "b",
                 "metric": "space.peak_fixpoint_rows",
                 "min_ratio": 10.0, "n": 4, "ratio": 390.0, "ok": True},
            ],
            "expectations": [
                {"kind": "poly", "metric": "seconds", "ok": True,
                 "fit": {"slope": 1.0}},
                {"kind": "bound", "metric": "collapse.domain_values",
                 "ok": True, "bound": "1.0 * n**1"},
            ],
        }}}
        stripped = strip_timing(document)
        gates = stripped["suites"]["s"]["gates"]
        assert "ratio" not in gates[0]          # seconds gate stripped
        assert gates[1]["ratio"] == 390.0       # counter gate survives
        expectations = stripped["suites"]["s"]["expectations"]
        assert "fit" not in expectations[0]
        assert expectations[1]["ok"] is True
