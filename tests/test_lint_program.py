"""Unit tests for the program-level analyzer (:mod:`repro.lint.program`).

Each pass is pinned on small hand-built programs: the labelled
dependency graph, Tarjan SCCs (bottom-up), stratification and strata
numbering, linear vs. non-linear recursion, the three dead-code
verdicts and their precedence, adornment propagation with blockers, and
the per-SCC routing verdicts the backend planner consumes.
"""

import pytest

from repro.datalog import DepEdge, Literal, Program, Rule
from repro.lint import analyze_program, lint_program
from repro.lint.program import PROGRAM_SCHEMA_VERSION
from repro.objects import database_schema

SCHEMA = database_schema(G=["U", "U"], H=["U", "U"])


def binary(*names):
    return {name: ["U", "U"] for name in names}


def codes(report):
    return [d.code for d in report]


class TestDependencyGraph:
    def test_edges_carry_polarity_and_both_can_coexist(self):
        program = Program(
            [Rule(Literal("T", ["x", "y"]),
                  [Literal("G", ["x", "y"]),
                   Literal("G", ["y", "x"], positive=False)])],
            binary("T"),
        )
        assert program.dependency_edges() == frozenset({
            DepEdge("T", "G", True), DepEdge("T", "G", False)})

    def test_sccs_are_bottom_up(self):
        # A -> B -> C (no recursion): C's SCC must come before B's
        # before A's.
        program = Program(
            [Rule(Literal("A", ["x", "y"]), [Literal("B", ["x", "y"])]),
             Rule(Literal("B", ["x", "y"]), [Literal("C", ["x", "y"])]),
             Rule(Literal("C", ["x", "y"]), [Literal("G", ["x", "y"])])],
            binary("A", "B", "C"),
        )
        analysis = analyze_program(program, SCHEMA, query="A")
        order = {scc[0]: i for i, scc in enumerate(analysis.sccs)}
        assert order["G"] < order["C"] < order["B"] < order["A"]

    def test_mutual_recursion_is_one_scc(self):
        program = Program(
            [Rule(Literal("A", ["x", "y"]), [Literal("B", ["x", "y"])]),
             Rule(Literal("B", ["x", "y"]),
                  [Literal("A", ["x", "z"]), Literal("G", ["z", "y"])])],
            binary("A", "B"),
        )
        analysis = analyze_program(program, SCHEMA, query="A")
        assert ("A", "B") in analysis.sccs

    def test_strata_respect_negation(self):
        # T negates S: stratum(T) > stratum(S).
        program = Program(
            [Rule(Literal("S", ["x", "y"]), [Literal("G", ["x", "y"])]),
             Rule(Literal("T", ["x", "y"]),
                  [Literal("H", ["x", "y"]),
                   Literal("S", ["x", "y"], positive=False)])],
            binary("S", "T"),
        )
        analysis = analyze_program(program, SCHEMA, query="T")
        assert analysis.stratified
        assert analysis.strata["T"] == analysis.strata["S"] + 1

    def test_negation_in_cycle_is_unstratified(self):
        program = Program(
            [Rule(Literal("T", ["x", "y"]),
                  [Literal("G", ["x", "y"]),
                   Literal("S", ["x", "y"], positive=False)]),
             Rule(Literal("S", ["x", "y"]),
                  [Literal("G", ["x", "y"]),
                   Literal("T", ["x", "y"], positive=False)])],
            binary("S", "T"),
        )
        analysis = analyze_program(program, SCHEMA, query="T")
        assert not analysis.stratified
        assert analysis.strata is None
        assert analysis.negative_cycle_edges
        report = lint_program(program, database_schema(G=["U", "U"]))
        assert "DEP002" in codes(report)
        assert report.fails()

    def test_linear_vs_nonlinear_recursion(self):
        linear = Program(
            [Rule(Literal("T", ["x", "y"]), [Literal("G", ["x", "y"])]),
             Rule(Literal("T", ["x", "y"]),
                  [Literal("T", ["x", "z"]), Literal("G", ["z", "y"])])],
            binary("T"),
        )
        nonlinear = Program(
            [Rule(Literal("T", ["x", "y"]), [Literal("G", ["x", "y"])]),
             Rule(Literal("T", ["x", "y"]),
                  [Literal("T", ["x", "z"]), Literal("T", ["z", "y"])])],
            binary("T"),
        )
        lin = analyze_program(linear, SCHEMA, query="T")
        non = analyze_program(nonlinear, SCHEMA, query="T")
        assert [v.recursion for v in lin.routing if "T" in v.scc] == ["linear"]
        assert [v.recursion for v in non.routing
                if "T" in v.scc] == ["nonlinear"]

    def test_negated_recursive_literal_still_counts_as_recursion(self):
        # Recursion through negation only: the SCC is recursive (and
        # unstratified), not "linear" via the positive count.
        program = Program(
            [Rule(Literal("T", ["x", "y"]),
                  [Literal("G", ["x", "y"]),
                   Literal("T", ["y", "x"], positive=False)])],
            binary("T"),
        )
        analysis = analyze_program(program, SCHEMA, query="T")
        verdict = next(v for v in analysis.routing if "T" in v.scc)
        assert verdict.negated_in_cycle
        assert verdict.route == "unstratified"


class TestDeadCode:
    def test_unreachable_rule_is_ded001(self):
        program = Program(
            [Rule(Literal("T", ["x", "y"]), [Literal("G", ["x", "y"])]),
             Rule(Literal("S", ["x", "y"]), [Literal("G", ["x", "y"])])],
            binary("T", "S"),
        )
        analysis = analyze_program(program, SCHEMA, query="T")
        assert [(d.index, d.code) for d in analysis.dead_rules] == \
            [(1, "DED001")]

    def test_never_fires_is_ded002_and_wins_over_ded001(self):
        # Rule 1 is both unreachable from T and impossible (Empty has
        # no rules, not in schema): DED002 is the stronger verdict.
        program = Program(
            [Rule(Literal("T", ["x", "y"]), [Literal("G", ["x", "y"])]),
             Rule(Literal("S", ["x", "y"]), [Literal("Empty", ["x", "y"])])],
            binary("T", "S"),
        )
        analysis = analyze_program(program, SCHEMA, query="T")
        assert [(d.index, d.code) for d in analysis.dead_rules] == \
            [(1, "DED002")]

    def test_emptiness_propagates_through_idb_chains(self):
        # S only derives from Empty, so rules using S can never fire
        # either — the least-fixpoint "possibly nonempty" computation.
        program = Program(
            [Rule(Literal("S", ["x", "y"]), [Literal("Empty", ["x", "y"])]),
             Rule(Literal("T", ["x", "y"]), [Literal("S", ["x", "y"])])],
            binary("T", "S"),
        )
        analysis = analyze_program(program, SCHEMA, query="T")
        assert {(d.index, d.code) for d in analysis.dead_rules} == \
            {(0, "DED002"), (1, "DED002")}

    def test_negated_empty_literal_does_not_kill_a_rule(self):
        program = Program(
            [Rule(Literal("T", ["x", "y"]),
                  [Literal("G", ["x", "y"]),
                   Literal("Empty", ["x", "y"], positive=False)])],
            binary("T"),
        )
        analysis = analyze_program(program, SCHEMA, query="T")
        assert not analysis.dead_rules

    def test_duplicate_rule_is_ded003(self):
        rule = Rule(Literal("T", ["x", "y"]), [Literal("G", ["x", "y"])])
        program = Program([rule, rule], binary("T"))
        analysis = analyze_program(program, SCHEMA, query="T")
        assert [(d.index, d.code) for d in analysis.dead_rules] == \
            [(1, "DED003")]

    def test_live_program_drops_exactly_the_dead_rules(self):
        keep = Rule(Literal("T", ["x", "y"]), [Literal("G", ["x", "y"])])
        dead = Rule(Literal("S", ["x", "y"]), [Literal("G", ["x", "y"])])
        program = Program([keep, dead], binary("T", "S"))
        analysis = analyze_program(program, SCHEMA, query="T")
        live = analysis.live_program()
        assert live.rules == (keep,)
        assert live.idb_types == program.idb_types


class TestAdornment:
    def test_constants_propagate_left_to_right(self):
        program = Program(
            [Rule(Literal("T", ["x", "y"]), [Literal("G", ["x", "y"])]),
             Rule(Literal("T", ["x", "y"]),
                  [Literal("T", ["x", "z"]), Literal("G", ["z", "y"])])],
            binary("T"),
        )
        # (Bare lowercase strings coerce to variables, so the bound
        # argument is a real constant value.)
        analysis = analyze_program(
            program, SCHEMA,
            query=Literal("T", [("const",), "y"]))
        assert analysis.adornment.query_adornment == "bf"
        assert analysis.adornment.table["T"] == ("bf",)
        assert analysis.adornment.feasible

    def test_all_free_query_is_trivially_feasible(self):
        program = Program(
            [Rule(Literal("T", ["x", "y"]), [Literal("G", ["x", "y"])])],
            binary("T"),
        )
        analysis = analyze_program(program, SCHEMA, query="T")
        assert analysis.adornment.query_adornment == "ff"
        assert analysis.adornment.feasible

    def test_unbound_negation_blocks(self):
        program = Program(
            [Rule(Literal("T", ["x", "y"]),
                  [Literal("G", ["x", "y"], positive=False),
                   Literal("G", ["y", "x"])])],
            binary("T"),
        )
        analysis = analyze_program(
            program, SCHEMA, query=Literal("T", [("c",), "y"]))
        assert not analysis.adornment.feasible
        blocker = analysis.adornment.blockers[0]
        assert blocker.kind == "unbound-negation"
        assert "y" in blocker.reason
        report = lint_program(program, database_schema(G=["U", "U"]),
                              query=Literal("T", [("c",), "y"]))
        assert "ADN003" in codes(report)

    def test_equality_builtin_generates_bindings(self):
        # x = 'c' binds x before the negation, so nothing blocks.
        from repro.datalog import BuiltinLiteral

        program = Program(
            [Rule(Literal("T", ["x", "x"]),
                  [BuiltinLiteral("=", "x", ("c",)),
                   Literal("G", ["x", "x"], positive=False)])],
            binary("T"),
        )
        analysis = analyze_program(program, SCHEMA, query="T")
        assert analysis.adornment.feasible

    def test_negating_own_component_blocks(self):
        # T negates S and S depends on T: same SCC, fully bound or not,
        # magic sets cannot cross it.  (Stratified=False here would
        # defer to DEP002, so build a *stratified-looking* variant via
        # positive cycle + bound negation.)
        program = Program(
            [Rule(Literal("T", ["x", "y"]),
                  [Literal("G", ["x", "y"]),
                   Literal("S", ["x", "y"]),
                   Literal("S", ["y", "x"], positive=False)]),
             Rule(Literal("S", ["x", "y"]), [Literal("T", ["x", "y"])])],
            binary("T", "S"),
        )
        analysis = analyze_program(program, SCHEMA, query="T")
        # This program is actually unstratified (negative edge T->S in
        # the {S, T} SCC), so the blocker is suppressed in favour of
        # DEP002 -- but the SCC routing must say "unstratified".
        verdict = next(v for v in analysis.routing if "T" in v.scc)
        assert verdict.route == "unstratified"


class TestRouting:
    def test_routes_cover_the_four_shapes(self):
        program = Program(
            [  # Base: nonrecursive.
             Rule(Literal("B", ["x", "y"]), [Literal("G", ["x", "y"])]),
             # Linear recursion.
             Rule(Literal("L", ["x", "y"]), [Literal("B", ["x", "y"])]),
             Rule(Literal("L", ["x", "y"]),
                  [Literal("L", ["x", "z"]), Literal("G", ["z", "y"])]),
             # Non-linear (but stratified) recursion.
             Rule(Literal("N", ["x", "y"]), [Literal("L", ["x", "y"])]),
             Rule(Literal("N", ["x", "y"]),
                  [Literal("N", ["x", "z"]), Literal("N", ["z", "y"])]),
             # Unstratified: negated self-recursion.
             Rule(Literal("W", ["x", "y"]),
                  [Literal("G", ["x", "y"]),
                   Literal("W", ["y", "x"], positive=False)])],
            binary("B", "L", "N", "W"),
        )
        analysis = analyze_program(program, SCHEMA)
        routes = {v.scc[0]: v.route for v in analysis.routing
                  if v.scc[0] in "BLNW"}
        assert routes == {
            "B": "nonrecursive",
            "L": "linear-recursive",
            "N": "stratified-recursive",
            "W": "unstratified",
        }

    def test_to_dict_is_schema_versioned(self):
        program = Program(
            [Rule(Literal("T", ["x", "y"]), [Literal("G", ["x", "y"])])],
            binary("T"),
        )
        analysis = analyze_program(program, SCHEMA, query="T")
        doc = analysis.to_dict()
        assert doc["schema"] == PROGRAM_SCHEMA_VERSION
        assert doc["stratified"] is True
        assert doc["routing"][0]["route"] in (
            "nonrecursive", "linear-recursive")
        import json
        json.dumps(doc)  # must be JSON-serialisable as-is

    def test_unknown_query_predicate_raises_value_error(self):
        program = Program(
            [Rule(Literal("T", ["x", "y"]), [Literal("G", ["x", "y"])])],
            binary("T"),
        )
        with pytest.raises(ValueError):
            analyze_program(program, SCHEMA, query="Nope")

    def test_default_query_prefers_the_unreferenced_output(self):
        program = Program(
            [Rule(Literal("S", ["x", "y"]), [Literal("G", ["x", "y"])]),
             Rule(Literal("T", ["x", "y"]), [Literal("S", ["x", "y"])])],
            binary("T", "S"),
        )
        analysis = analyze_program(program, SCHEMA)
        assert analysis.query.predicate == "T"
        assert not analysis.dead_rules  # S is reachable from T
