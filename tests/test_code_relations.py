"""Tests for CODE relations (Lemma 4.4; experiment E10)."""

import pytest

from repro.machines.code_relations import (
    code_relation,
    code_u_table,
    code_word,
    index_arity,
)
from repro.objects import (
    AtomOrder,
    atom,
    cset,
    encode_value,
    materialize_domain,
    parse_type,
)


class TestCodeUTable:
    def test_paper_five_constant_table_verbatim(self):
        """The exact CODE_U table from the Lemma 4.4 figure (order abcde)."""
        order = AtomOrder.from_labels("abcde")
        rows = [(str(r.obj), str(r.index[0]), r.symbol)
                for r in code_u_table(order)]
        assert rows == [
            ("a", "a", "0"),
            ("b", "a", "1"),
            ("c", "a", "1"), ("c", "b", "0"),
            ("d", "a", "1"), ("d", "b", "1"),
            ("e", "a", "1"), ("e", "b", "0"), ("e", "c", "0"),
        ]

    def test_codes_are_minimal_binary(self):
        """The m-th constant's digit word is the binary numeral of m."""
        order = AtomOrder.from_labels("abcdefgh")
        rows = code_u_table(order)
        for position, constant in enumerate(order.atoms):
            digits = [r.symbol for r in rows if r.obj == constant]
            word = "".join(digits)
            assert word == format(position, "b")

    def test_empty_order(self):
        assert code_u_table(AtomOrder([])) == []

    def test_single_constant(self):
        rows = code_u_table(AtomOrder.from_labels("a"))
        assert len(rows) == 1
        assert rows[0].symbol == "0"


class TestIndexArity:
    @pytest.mark.parametrize("length,n,expected", [
        (1, 3, 1), (3, 3, 1), (4, 3, 2), (9, 3, 2), (10, 3, 3),
        (1, 2, 1), (5, 2, 3),
    ])
    def test_smallest_m(self, length, n, expected):
        assert index_arity(length, n) == expected

    def test_rejects_empty_universe(self):
        with pytest.raises(ValueError):
            index_arity(4, 0)


class TestCodeRelation:
    def test_words_match_standard_encoding(self):
        order = AtomOrder.from_labels("abc")
        typ = parse_type("{U}")
        relation = code_relation(typ, order)
        for value in materialize_domain(typ, order.atoms):
            assert relation.word_of(value) == encode_value(value, order)

    def test_tuple_type(self):
        order = AtomOrder.from_labels("ab")
        typ = parse_type("[U,{U}]")
        relation = code_relation(typ, order)
        for value in materialize_domain(typ, order.atoms):
            assert relation.word_of(value) == encode_value(value, order)

    def test_index_tuples_are_atoms(self):
        order = AtomOrder.from_labels("abc")
        relation = code_relation(parse_type("{U}"), order)
        for row in relation.rows:
            assert all(a in order for a in row.index)
            assert len(row.index) == relation.index_arity

    def test_positions_unique_per_object(self):
        order = AtomOrder.from_labels("ab")
        relation = code_relation(parse_type("{U}"), order)
        seen = set()
        for row in relation.rows:
            key = (row.obj, row.index)
            assert key not in seen, "duplicate position"
            seen.add(key)

    def test_cap(self):
        order = AtomOrder.from_labels("abcdef")
        with pytest.raises(ValueError):
            code_relation(parse_type("{[U,U]}"), order, max_objects=100)

    def test_code_word_helper(self):
        order = AtomOrder.from_labels("abc")
        value = cset(atom("a"), atom("c"))
        assert code_word(value, order) == "{00#10}"
