"""Tests for Proposition 5.2's encoding construction (experiment E17).

On sparse inputs, objects of the top set height can be represented by
fixed-arity tuples of lower objects; fixpoints then run over the lower
heights and CALC_i alone suffices.  We execute the encoding and confirm
fixpoint queries commute with it.
"""

import pytest

from repro.analysis import SparseEncoding, SparseEncodingError
from repro.core.safety import evaluate_range_restricted
from repro.objects import CSet, database_schema, instance, parse_type
from repro.workloads import (
    set_random_graph,
    sparse_chain_family,
    transitive_closure_query,
    verso_instance,
)


class TestCodebook:
    def test_collects_top_height_sets(self):
        inst = sparse_chain_family(4)
        encoding = SparseEncoding(inst)
        assert len(encoding.encoded_objects) == 4  # the 4 singleton nodes

    def test_index_arity_grows_with_object_count(self):
        small = SparseEncoding(sparse_chain_family(4))
        assert small.index_arity == 1  # 4 objects, 4 atoms
        crowded = SparseEncoding(set_random_graph(3, 7, p=0.5))
        assert crowded.index_arity >= 2  # 7 objects, only 3 atoms

    def test_encode_decode_roundtrip(self):
        inst = sparse_chain_family(5)
        encoding = SparseEncoding(inst)
        for obj in encoding.encoded_objects:
            assert encoding.decode_value(encoding.encode_value(obj)) == obj

    def test_flat_schema_rejected(self):
        schema = database_schema(G=["U", "U"])
        inst = instance(schema, G=[("a", "b")])
        with pytest.raises(SparseEncodingError):
            SparseEncoding(inst)


class TestEncodedInstance:
    def test_set_height_drops(self):
        inst = sparse_chain_family(4)
        encoded = SparseEncoding(inst).encode_instance()
        assert encoded.schema.set_height == 0
        assert inst.schema.set_height == 1

    def test_cardinality_preserved(self):
        inst = sparse_chain_family(6)
        encoded = SparseEncoding(inst).encode_instance()
        assert encoded.cardinality == inst.cardinality

    def test_q_relation_recovers_objects(self):
        """Q_T's defining property: o = {y | Q_T(x_vec, y)}."""
        inst = verso_instance(5)
        encoding = SparseEncoding(inst)
        rows = encoding.q_relation_rows()
        for obj in encoding.encoded_objects:
            index = encoding.encode_value(obj)
            index_items = (index.items if hasattr(index, "items")
                           and not isinstance(index, dict) else (index,))
            members = {row[-1] for row in rows
                       if row[:-1] == tuple(index_items)}
            assert CSet(members) == obj


class TestProposition52:
    """Fixpoint queries commute with the encoding on sparse inputs."""

    def test_tc_on_sparse_chain(self):
        inst = sparse_chain_family(6)
        direct = evaluate_range_restricted(
            transitive_closure_query("{U}"), inst).answer
        encoding = SparseEncoding(inst)
        flat = encoding.encode_instance()
        node_type = flat.schema["G"].column_types[0]
        encoded_answer = evaluate_range_restricted(
            transitive_closure_query(node_type), flat).answer
        assert encoding.decode_rows(encoded_answer) == direct

    def test_tc_on_random_sparse_graph(self):
        inst = set_random_graph(4, 5, p=0.4, seed=23)
        direct = evaluate_range_restricted(
            transitive_closure_query("{U}"), inst).answer
        encoding = SparseEncoding(inst)
        flat = encoding.encode_instance()
        node_type = flat.schema["G"].column_types[0]
        encoded_answer = evaluate_range_restricted(
            transitive_closure_query(node_type), flat).answer
        assert encoding.decode_rows(encoded_answer) == direct

    def test_encoding_shrinks_quantification_space(self):
        """The point of the collapse: after encoding, fixpoint columns
        range over n**m index tuples instead of 2**n sets."""
        from repro.objects.domains import domain_cardinality

        inst = sparse_chain_family(8)
        encoding = SparseEncoding(inst)
        flat = encoding.encode_instance()
        n = len(inst.atoms())
        nested_space = domain_cardinality(parse_type("{U}"), n)
        flat_space = domain_cardinality(
            flat.schema["G"].column_types[0], n)
        assert flat_space < nested_space
