"""Tests for density and sparsity (Definition 4.1, Lemma 4.1,
Examples 4.1/4.2; experiments E07, E08)."""

import math

import pytest

from repro.analysis import (
    classify_family,
    instance_stats,
    is_dense_for_type,
    is_dense_witness,
    is_sparse_for_type,
    is_sparse_witness,
    lemma41_witness,
    log2_dom_ik,
    log2_domain_cardinality,
    subobject_counts,
    subobjects_of_type,
    type_usage_histogram,
)
from repro.objects import cset, atom, database_schema, instance, parse_type
from repro.objects.domains import dom_ik_cardinality
from repro.workloads import (
    all_subsets_instance,
    course_catalog_dense,
    course_catalog_sparse,
    full_domain_instance,
    sparse_chain_family,
    verso_instance,
)


class TestLogDomain:
    def test_log2_matches_exact(self):
        for text, n in [("U", 4), ("{U}", 5), ("[U,{U}]", 3), ("{[U,U]}", 2)]:
            typ = parse_type(text)
            from repro.objects.domains import domain_cardinality

            exact = math.log2(domain_cardinality(typ, n))
            assert abs(log2_domain_cardinality(typ, n) - exact) < 1e-9

    def test_log2_dom_ik_close_to_exact(self):
        from repro.objects.domains import all_ik_types

        for i, k, n in [(1, 1, 4), (1, 2, 3)]:
            exact = math.log2(dom_ik_cardinality(i, k, n))
            approx = log2_dom_ik(i, k, n)
            slack = math.log2(len(all_ik_types(i, k))) + 0.1
            assert exact <= approx <= exact + slack

    def test_beyond_exact_reach(self):
        """log2|dom(2,2,n)| is computable where the exact value is not."""
        value = log2_dom_ik(2, 2, 4)
        assert value > 2 ** 30  # the top tower level


class TestPointwiseWitnesses:
    def test_full_domain_is_dense(self):
        # Pointwise witnesses need calibrated polynomials (generous
        # defaults admit everything on tiny inputs); family
        # classification below is the robust tool.
        inst = all_subsets_instance(6)
        assert is_dense_witness(inst, 1, 1)
        assert not is_sparse_witness(inst, 1, 1, degree=1, coefficient=2)

    def test_chain_is_sparse(self):
        inst = sparse_chain_family(8)
        assert is_sparse_witness(inst, 1, 2)
        assert not is_dense_witness(inst, 1, 2)


class TestFamilies:
    def test_all_subsets_family_dense(self):
        verdict = classify_family(all_subsets_instance, 1, 1,
                                  [3, 4, 5, 6, 7, 8])
        assert verdict.looks_dense
        assert not verdict.looks_sparse

    def test_chain_family_sparse(self):
        verdict = classify_family(sparse_chain_family, 1, 2,
                                  [3, 4, 5, 6, 8, 10])
        assert verdict.looks_sparse
        assert not verdict.looks_dense

    def test_full_pair_sets_dense_12(self):
        verdict = classify_family(
            lambda n: full_domain_instance("{[U,U]}", n), 1, 2, [2, 3, 4])
        assert verdict.looks_dense


class TestExamples41And42:
    def test_verso_is_sparse_for_set_type(self):
        """Example 4.1: keyed nested relations are sparse w.r.t. {U}."""
        inst = verso_instance(10)
        assert is_sparse_for_type(inst, parse_type("{U}"), degree=1,
                                  coefficient=2)
        assert not is_dense_for_type(inst, parse_type("{U}"), degree=1,
                                     coefficient=2)

    def test_course_catalog_dense_without_prerequisites(self):
        """Example 4.2, no prerequisites: dense w.r.t. set-of-classes."""
        inst = course_catalog_dense(7)
        assert is_dense_for_type(inst, parse_type("{U}"))

    def test_course_catalog_sparse_with_prerequisites(self):
        inst = course_catalog_sparse(12, max_simultaneous=2)
        assert is_sparse_for_type(inst, parse_type("{U}"), degree=2,
                                  coefficient=1)
        assert not is_dense_for_type(inst, parse_type("{U}"), degree=1,
                                     coefficient=2)


class TestLemma41:
    """Cardinality- and size-based density/sparsity are interchangeable."""

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_facts_a_b_c(self, n):
        witness = lemma41_witness(all_subsets_instance(n), 1, 1)
        assert all(witness.facts.values()), witness.facts

    def test_dense_family_dense_in_both_measures(self):
        """For a dense family, ||dom|| is polynomial in ||I|| too."""
        for n in (3, 4, 5):
            witness = lemma41_witness(all_subsets_instance(n), 1, 1)
            # cardinality-density: |dom| <= 4 * |I|
            assert witness.dom_cardinality <= 4 * witness.cardinality
            # size-density: ||dom|| <= 8 * ||I|| (one fixed polynomial)
            assert witness.dom_size <= 8 * witness.size

    def test_sparse_family_sparse_in_both_measures(self):
        for n in (4, 6, 8):
            witness = lemma41_witness(sparse_chain_family(n), 1, 1)
            log_dom = math.log2(witness.dom_cardinality)
            log_dom_size = math.log2(witness.dom_size)
            assert witness.cardinality <= 4 * log_dom
            assert witness.size <= 8 * log_dom_size ** 2


class TestStatistics:
    def test_instance_stats(self):
        schema = database_schema(R=["{U}"])
        inst = instance(schema, R=[({"a", "b"},), ({"c"},)])
        stats = instance_stats(inst)
        assert stats.cardinality == 2
        assert stats.n_atoms == 3
        assert stats.per_relation == {"R": 2}
        assert stats.size > 0

    def test_subobject_counts(self):
        schema = database_schema(R=["[U,{U}]"])
        inst = instance(schema, R=[(("a", {"b", "c"}),)])
        counts = subobject_counts(inst)
        assert counts[parse_type("U")] == 3
        assert counts[parse_type("{U}")] == 1
        assert counts[parse_type("[U,{U}]")] == 1

    def test_subobjects_of_type(self):
        schema = database_schema(R=["[U,{U}]"])
        inst = instance(schema, R=[(("a", {"b"}),), (("a", {"c"}),)])
        sets = subobjects_of_type(inst, parse_type("{U}"))
        assert sets == frozenset({cset(atom("b")), cset(atom("c"))})

    def test_histogram_counts_occurrences(self):
        schema = database_schema(R=["{U}"])
        inst = instance(schema, R=[({"a"},), ({"b"},)])
        histogram = type_usage_histogram(inst)
        assert histogram[parse_type("U")] == 2
        assert histogram[parse_type("{U}")] == 2
