"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.objects import (
    Atom,
    AtomOrder,
    CSet,
    CTuple,
    database_schema,
    instance,
    parse_type,
    relation,
)


# ---------------------------------------------------------------------------
# Run-ledger isolation
# ---------------------------------------------------------------------------

@pytest.fixture(autouse=True)
def _isolated_run_ledger(tmp_path, monkeypatch):
    """Point the run ledger at the test's tmp dir, so CLI invocations
    inside tests never append to the developer's .repro/ledger.jsonl."""
    monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "test-ledger.jsonl"))


# ---------------------------------------------------------------------------
# Hypothesis strategies for complex objects
# ---------------------------------------------------------------------------

def atoms_strategy(labels: str = "abcd"):
    """Atoms over a tiny universe (keeps domains enumerable)."""
    return st.sampled_from([Atom(ch) for ch in labels])


def values_of_type(typ, labels: str = "abcd"):
    """A strategy generating values conforming to a given type."""
    from repro.objects.types import AtomType, SetType, TupleType

    if isinstance(typ, AtomType):
        return atoms_strategy(labels)
    if isinstance(typ, SetType):
        return st.frozensets(
            values_of_type(typ.element, labels), max_size=4
        ).map(CSet)
    if isinstance(typ, TupleType):
        return st.tuples(
            *[values_of_type(c, labels) for c in typ.components]
        ).map(CTuple)
    raise TypeError(f"unknown type {typ!r}")


def small_types():
    """A strategy over small type expressions (height <= 2, width <= 2)."""
    return st.sampled_from([
        parse_type(text)
        for text in ["U", "{U}", "[U,U]", "[U,{U}]", "{[U,U]}",
                     "{{U}}", "[{U},{U}]", "{[U,{U}]}"]
    ])


# ---------------------------------------------------------------------------
# Hypothesis strategies for the differential-testing harness (PR 3)
# ---------------------------------------------------------------------------
#
# Random flat-graph instances, random CALC(+IFP/PFP) queries and random
# safe Datalog programs over them.  Everything is kept tiny (<= 4 atoms,
# formula depth <= 3) so active-domain evaluation stays instantaneous;
# the point is breadth of shapes, not size.

FLAT_GRAPH_SCHEMA = database_schema(G=["U", "U"])


def flat_graph_instances(labels: str = "abcd", max_edges: int = 8):
    """Random flat graphs G[U, U] over a tiny atom universe."""
    node = st.sampled_from([Atom(ch) for ch in labels])
    return st.frozensets(st.tuples(node, node), max_size=max_edges).map(
        lambda edges: instance(FLAT_GRAPH_SCHEMA,
                               G=sorted(edges, key=repr))
    )


def calc_queries(kind: str = "ifp"):
    """Random CALC+IFP (or +PFP) queries over the flat graph schema.

    The query applies a random binary fixpoint ``S`` (whose body may
    mention ``G`` and ``S``) and optionally disjoins a fixpoint-free
    context formula; the head lists every free variable.  Quantifier
    binders are drawn fresh (``q1``, ``q2``, ...) so the rename-apart
    discipline of the type checker (TYP005) holds by construction.
    """
    from repro.core.builder import V, eq, exists, ifp, pfp, query, rel

    build_fix = ifp if kind == "ifp" else pfp

    @st.composite
    def queries(draw):
        counter = [0]

        def formula(rels, pool, depth):
            pick = draw(st.integers(0, 5 if depth > 0 else 1))
            if pick == 0:
                return rel(draw(st.sampled_from(rels)))(
                    V(draw(st.sampled_from(pool)), "U"),
                    V(draw(st.sampled_from(pool)), "U"))
            if pick == 1:
                return eq(V(draw(st.sampled_from(pool)), "U"),
                          V(draw(st.sampled_from(pool)), "U"))
            if pick == 2:
                return formula(rels, pool, depth - 1) \
                    & formula(rels, pool, depth - 1)
            if pick == 3:
                return formula(rels, pool, depth - 1) \
                    | formula(rels, pool, depth - 1)
            if pick == 4:
                return ~formula(rels, pool, depth - 1)
            counter[0] += 1
            fresh = V(f"q{counter[0]}", "U")
            return exists(fresh,
                          formula(rels, pool + (fresh.name,), depth - 1))

        body = formula(("G", "S"), ("x", "y", "z"), draw(st.integers(1, 3)))
        fix = build_fix("S", [V("x", "U"), V("y", "U")], body)
        result = fix(V("x", "U"), V("y", "U"))
        if draw(st.booleans()):
            result = result | formula(("G",), ("x", "y", "z"),
                                      draw(st.integers(0, 2)))
        head = [V(name, "U") for name in sorted(result.free_variables())]
        return query(head, result)

    return queries()


@st.composite
def datalog_rules(draw):
    """One random *safe* rule over EDB ``G`` and IDB ``T``/``S``.

    Safety by construction: head variables, negated literals and
    built-ins only use variables bound by the positive body literals.
    """
    from repro.datalog import BuiltinLiteral, Literal, Rule

    variables = ("x", "y", "z")
    # "G" is double-weighted so most programs actually touch the EDB.
    positives = [
        Literal(draw(st.sampled_from(("G", "G", "T", "S"))),
                (draw(st.sampled_from(variables)),
                 draw(st.sampled_from(variables))))
        for _ in range(draw(st.integers(1, 2)))
    ]
    bound = sorted({v for lit in positives for v in lit.variables()})
    head = Literal(draw(st.sampled_from(("T", "S"))),
                   (draw(st.sampled_from(bound)),
                    draw(st.sampled_from(bound))))
    body = list(positives)
    if draw(st.booleans()):
        body.append(Literal(draw(st.sampled_from(("G", "T", "S"))),
                            (draw(st.sampled_from(bound)),
                             draw(st.sampled_from(bound))),
                            positive=False))
    if draw(st.booleans()):
        body.append(BuiltinLiteral("=", draw(st.sampled_from(bound)),
                                   draw(st.sampled_from(bound)),
                                   positive=draw(st.booleans())))
    return Rule(head, body)


@st.composite
def datalog_programs(draw):
    """Random inf-Datalog programs (1-4 safe rules, IDB T[U,U], S[U,U])."""
    from repro.datalog import Program

    rules = [draw(datalog_rules()) for _ in range(draw(st.integers(1, 4)))]
    return Program(rules, idb_types={"T": ["U", "U"], "S": ["U", "U"]})


# ---------------------------------------------------------------------------
# Hypothesis strategies for the supply-chain workload (PR 10)
# ---------------------------------------------------------------------------

def supply_chain_instances(max_parts: int = 6):
    """Random *miniature* supply-chain instances over the full 10-relation
    nested schema (:func:`repro.workloads.supply_chain_schema`).

    Everything is tiny (a handful of parts/suppliers) so the three-lane
    differential stays fast, but structurally faithful: set-valued
    certification and assembly columns, an acyclic BOM (parents always
    have a smaller index than children, so cycles are impossible by
    construction), tiered supplier edges pointing strictly down-index.
    Labels reuse the canonical generator's fixed-width scheme so the
    golden questions' named entities (``p000000``, ``s0000``, ``c00000``)
    resolve — possibly to empty answers — on every draw.
    """
    from repro.workloads import (
        BANDS,
        CATEGORIES,
        CERTIFICATIONS,
        REGIONS,
        TIERS,
        supply_chain_schema,
    )

    @st.composite
    def instances(draw):
        schema = supply_chain_schema()
        n_parts = draw(st.integers(2, max_parts))
        parts = [Atom(f"p{i:06d}") for i in range(n_parts)]
        certs = [Atom(c) for c in CERTIFICATIONS[:3]]
        part_rows = [
            (p, Atom(draw(st.sampled_from(CATEGORIES[:3])))) for p in parts
        ]
        cert_rows = [
            (p, CSet(draw(st.frozensets(st.sampled_from(certs),
                                        max_size=2))))
            for p in parts
        ]
        children: dict[Atom, list[Atom]] = {}
        bom_rows = []
        for index in range(1, n_parts):
            if draw(st.booleans()):
                parent = parts[draw(st.integers(0, index - 1))]
                children.setdefault(parent, []).append(parts[index])
                bom_rows.append((parent, parts[index]))
        assembly_rows = [(p, CSet(kids)) for p, kids in children.items()]
        n_suppliers = draw(st.integers(1, 3))
        suppliers = [Atom(f"s{i:04d}") for i in range(n_suppliers)]
        supplier_rows = [
            (s, Atom(draw(st.sampled_from(TIERS)))) for s in suppliers
        ]
        edge_rows = [
            (suppliers[hi], suppliers[lo])
            for hi in range(1, n_suppliers)
            for lo in range(hi)
            if draw(st.booleans())
        ]
        part_supplier_rows = sorted({
            (draw(st.sampled_from(parts)), draw(st.sampled_from(suppliers)))
            for _ in range(draw(st.integers(0, 4)))
        }, key=repr)
        customers = [Atom(f"c{i:05d}")
                     for i in range(draw(st.integers(1, 2)))]
        customer_rows = [
            (c, Atom(draw(st.sampled_from(REGIONS)))) for c in customers
        ]
        order_rows = [
            (Atom(f"o{i:06d}"), draw(st.sampled_from(customers)),
             draw(st.sampled_from(parts)))
            for i in range(draw(st.integers(0, 3)))
        ]
        inventory_rows = sorted({
            (Atom("f0"), draw(st.sampled_from(parts)),
             Atom(draw(st.sampled_from(BANDS))))
            for _ in range(draw(st.integers(0, 3)))
        }, key=repr)
        return instance(
            schema,
            Part=part_rows,
            PartCert=cert_rows,
            Assembly=assembly_rows,
            BOM=bom_rows,
            Supplier=supplier_rows,
            SupplierEdge=edge_rows,
            PartSupplier=part_supplier_rows,
            Customer=customer_rows,
            Order=order_rows,
            Inventory=inventory_rows,
        )

    return instances()


# ---------------------------------------------------------------------------
# Fixtures: the paper's worked instances
# ---------------------------------------------------------------------------

@pytest.fixture
def figure1_schema():
    """Schema of the paper's Figure 1: P[U, {U}, [U, {U}]]."""
    return database_schema(relation("P", "U", "{U}", "[U,{U}]"))


@pytest.fixture
def figure1_instance(figure1_schema):
    """The exact instance I of Figure 1."""
    return instance(
        figure1_schema,
        P=[("b", {"a", "b"}, ("c", {"a", "c"})),
           ("c", {"c"}, ("a", {"b", "c"}))],
    )


@pytest.fixture
def abc_order():
    """The enumeration 'abc' used throughout the paper's examples."""
    return AtomOrder.from_labels("abc")


@pytest.fixture
def set_graph_schema():
    return database_schema(G=["{U}", "{U}"])


@pytest.fixture
def set_graph_instance():
    """A 3-node path over singleton-set nodes: {a} -> {b} -> {c}."""
    from repro.workloads import singleton_chain

    return singleton_chain("abc")


@pytest.fixture
def flat_graph_schema():
    return database_schema(G=["U", "U"])
