"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.objects import (
    Atom,
    AtomOrder,
    CSet,
    CTuple,
    database_schema,
    instance,
    parse_type,
    relation,
)


# ---------------------------------------------------------------------------
# Hypothesis strategies for complex objects
# ---------------------------------------------------------------------------

def atoms_strategy(labels: str = "abcd"):
    """Atoms over a tiny universe (keeps domains enumerable)."""
    return st.sampled_from([Atom(ch) for ch in labels])


def values_of_type(typ, labels: str = "abcd"):
    """A strategy generating values conforming to a given type."""
    from repro.objects.types import AtomType, SetType, TupleType

    if isinstance(typ, AtomType):
        return atoms_strategy(labels)
    if isinstance(typ, SetType):
        return st.frozensets(
            values_of_type(typ.element, labels), max_size=4
        ).map(CSet)
    if isinstance(typ, TupleType):
        return st.tuples(
            *[values_of_type(c, labels) for c in typ.components]
        ).map(CTuple)
    raise TypeError(f"unknown type {typ!r}")


def small_types():
    """A strategy over small type expressions (height <= 2, width <= 2)."""
    return st.sampled_from([
        parse_type(text)
        for text in ["U", "{U}", "[U,U]", "[U,{U}]", "{[U,U]}",
                     "{{U}}", "[{U},{U}]", "{[U,{U}]}"]
    ])


# ---------------------------------------------------------------------------
# Fixtures: the paper's worked instances
# ---------------------------------------------------------------------------

@pytest.fixture
def figure1_schema():
    """Schema of the paper's Figure 1: P[U, {U}, [U, {U}]]."""
    return database_schema(relation("P", "U", "{U}", "[U,{U}]"))


@pytest.fixture
def figure1_instance(figure1_schema):
    """The exact instance I of Figure 1."""
    return instance(
        figure1_schema,
        P=[("b", {"a", "b"}, ("c", {"a", "c"})),
           ("c", {"c"}, ("a", {"b", "c"}))],
    )


@pytest.fixture
def abc_order():
    """The enumeration 'abc' used throughout the paper's examples."""
    return AtomOrder.from_labels("abc")


@pytest.fixture
def set_graph_schema():
    return database_schema(G=["{U}", "{U}"])


@pytest.fixture
def set_graph_instance(set_graph_schema):
    """A 3-node path over singleton-set nodes: {a} -> {b} -> {c}."""
    a, b, c = (CSet((Atom(ch),)) for ch in "abc")
    return instance(set_graph_schema, G=[(a, b), (b, c)])


@pytest.fixture
def flat_graph_schema():
    return database_schema(G=["U", "U"])
