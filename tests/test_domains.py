"""Tests for domains, cardinalities and hyper(i,k) (Section 2; E04)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.objects.domains import (
    DomainTooLarge,
    all_ik_types,
    dom_ik_cardinality,
    domain_cardinality,
    enumerate_domain,
    hyper,
    hyper_log2,
    materialize_domain,
)
from repro.objects.types import parse_type
from repro.objects.values import Atom

from .conftest import small_types

ATOMS3 = [Atom(ch) for ch in "abc"]


class TestHyper:
    """hyper(i,k)(n) = tower of i exponentials over n^k."""

    @pytest.mark.parametrize("i,k,n,expected", [
        (0, 1, 5, 5),
        (0, 2, 3, 9),
        (0, 3, 2, 8),
        (1, 1, 3, 2 ** 3),
        (1, 2, 3, 2 ** 18),           # 2^(2*3^2)
        (2, 1, 2, 2 ** (2 ** 2)),     # 2^(1*2^(1*2^1))
    ])
    def test_exact_values(self, i, k, n, expected):
        assert hyper(i, k, n) == expected

    def test_tower_height(self):
        # hyper(2,2)(3) = 2^(2 * 2^18): a 524289-bit number.
        assert hyper(2, 2, 3).bit_length() == 2 * 2 ** 18 + 1

    def test_guard(self):
        with pytest.raises(DomainTooLarge):
            hyper(3, 2, 3)  # triple tower: astronomically large

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            hyper(-1, 2, 3)

    def test_hyper_log2(self):
        import math
        assert hyper_log2(1, 2, 3) == 18.0
        assert abs(hyper_log2(0, 2, 3) - 2 * math.log2(3)) < 1e-9


class TestCardinality:
    @pytest.mark.parametrize("text,n,expected", [
        ("U", 3, 3),
        ("{U}", 3, 8),
        ("{{U}}", 2, 2 ** 4),
        ("[U,U]", 3, 9),
        ("{[U,U]}", 2, 2 ** 4),
        ("[{U},{U}]", 2, 16),
        ("[U,{U}]", 3, 24),
    ])
    def test_exact(self, text, n, expected):
        assert domain_cardinality(parse_type(text), n) == expected

    @given(small_types(), st.integers(min_value=0, max_value=3))
    def test_matches_enumeration(self, typ, n):
        atoms = [Atom(f"x{index}") for index in range(n)]
        try:
            values = materialize_domain(typ, atoms, max_size=100_000)
        except DomainTooLarge:
            return
        assert len(values) == domain_cardinality(typ, n)
        assert len(set(values)) == len(values)  # no duplicates

    def test_bounded_by_hyper(self):
        """|dom(T,D)| <= hyper(i,k)(n) for <i,k>-types (the Section 2 bound)."""
        for text in ["{U}", "{[U,U]}", "[{U},{U}]", "{{U}}"]:
            typ = parse_type(text)
            i, k = max(1, typ.set_height), max(2, typ.tuple_width)
            for n in (1, 2, 3):
                assert domain_cardinality(typ, n) <= hyper(i, k, n)

    def test_guard(self):
        with pytest.raises(DomainTooLarge):
            domain_cardinality(parse_type("{{{U}}}"), 5, max_bits=1000)


class TestEnumeration:
    def test_every_value_conforms(self):
        typ = parse_type("{[U,{U}]}")
        for value in enumerate_domain(typ, ATOMS3[:2]):
            assert value.conforms_to(typ)

    def test_cap_raises_before_materialising(self):
        with pytest.raises(DomainTooLarge):
            list(enumerate_domain(parse_type("{[U,U]}"), ATOMS3, max_size=10))

    def test_empty_universe(self):
        assert materialize_domain(parse_type("U"), []) == []
        # the empty set still inhabits {U} over an empty universe
        assert len(materialize_domain(parse_type("{U}"), [])) == 1


class TestIkTypes:
    def test_atoms_only(self):
        assert all_ik_types(0, 0) == (parse_type("U"),)

    def test_counts_are_stable(self):
        """Normalised <i,k>-type counts (documented reference values)."""
        assert len(all_ik_types(1, 1)) == 2      # U, {U}
        assert len(all_ik_types(2, 1)) == 3      # U, {U}, {{U}}
        assert len(all_ik_types(1, 2)) == 12
        assert len(all_ik_types(2, 2)) == 182

    def test_all_within_bounds(self):
        for i, k in [(1, 1), (1, 2), (2, 2)]:
            for typ in all_ik_types(i, k):
                assert typ.is_ik_type(i, k), typ

    def test_no_tuple_in_tuple(self):
        """The normal form assumption of Proposition 2.1's proof."""
        from repro.objects.types import TupleType

        for typ in all_ik_types(2, 2):
            for sub in typ.subtypes():
                if isinstance(sub, TupleType):
                    assert not any(
                        isinstance(c, TupleType) for c in sub.components
                    )

    def test_dom_ik_cardinality_monotone_in_n(self):
        values = [dom_ik_cardinality(1, 2, n) for n in (1, 2, 3)]
        assert values[0] < values[1] < values[2]

    def test_dom_ik_cardinality_at_least_largest_type(self):
        n = 3
        largest = max(
            domain_cardinality(t, n) for t in all_ik_types(1, 2)
        )
        assert dom_ik_cardinality(1, 2, n) >= largest
