"""Cross-engine consistency: CALC+IFP, Datalog, algebra and native
implementations must agree on randomized workloads.

The integration layer of the suite: every engine implements the same
semantics, so one oracle checks them all.
"""

import random

import pytest

from repro.algebra import BaseRel, Nest, tc_via_loop
from repro.core.evaluation import evaluate
from repro.core.safety import evaluate_range_restricted
from repro.datalog import Literal, Program, Rule, evaluate_inflationary
from repro.objects import atom, cset, database_schema, instance
from repro.workloads import nest_query, nest_query_ifp, transitive_closure_query


def _random_set_graph(rng: random.Random):
    nodes = [cset(atom(ch)) for ch in "abcd"]
    n_edges = rng.randint(1, 6)
    edges = set()
    while len(edges) < n_edges:
        edges.add((rng.choice(nodes), rng.choice(nodes)))
    schema = database_schema(G=["{U}", "{U}"])
    return instance(schema, G=list(edges))


def _random_flat_relation(rng: random.Random):
    atoms = ["a", "b", "c", "d"]
    rows = {(rng.choice(atoms), rng.choice(atoms))
            for _ in range(rng.randint(1, 7))}
    schema = database_schema(P=["U", "U"])
    return instance(schema, P=list(rows))


TC_PROGRAM = Program(
    rules=[
        Rule(Literal("T", ["x", "y"]), [Literal("G", ["x", "y"])]),
        Rule(Literal("T", ["x", "y"]),
             [Literal("T", ["x", "z"]), Literal("G", ["z", "y"])]),
    ],
    idb_types={"T": ["{U}", "{U}"]},
)


class TestTransitiveClosureAcrossEngines:
    @pytest.mark.parametrize("seed", range(8))
    def test_four_engines_agree(self, seed):
        inst = _random_set_graph(random.Random(seed))
        oracle = tc_via_loop(inst)

        naive = evaluate(transitive_closure_query(), inst)
        assert {(r.component(1), r.component(2)) for r in naive} == set(oracle)

        restricted = evaluate_range_restricted(
            transitive_closure_query(), inst).answer
        assert restricted == naive

        datalog = evaluate_inflationary(TC_PROGRAM, inst)["T"]
        assert datalog == frozenset(tuple(pair) for pair in oracle)


class TestNestAcrossEngines:
    @pytest.mark.parametrize("seed", range(8))
    def test_three_engines_agree(self, seed):
        inst = _random_flat_relation(random.Random(seed))

        rule9 = evaluate_range_restricted(nest_query(), inst).answer
        ifp_term = evaluate_range_restricted(nest_query_ifp(), inst).answer
        assert rule9 == ifp_term

        algebra = Nest(BaseRel("P"), [1], [2]).evaluate(inst)
        assert frozenset(tuple(row.items) for row in rule9) == algebra

        active = evaluate(nest_query(), inst)
        assert active == rule9


class TestSimulationAgainstDirectEvaluation:
    def test_identity_machine_is_the_identity_query(self, figure1_instance,
                                                    figure1_schema):
        """The TM route and direct evaluation implement the same query
        (here: identity), tying Section 3's semantics to Section 4's
        machine model."""
        from repro.machines import identity_machine, simulate_query

        result = simulate_query(
            identity_machine(set("01#[]{}P")), figure1_instance,
            output_schema=figure1_schema)
        assert result.output == figure1_instance
