"""Tests for multi-sorted density (Remark 4.1; the paper's future work)."""

import pytest

from repro.analysis import (
    SAtom,
    SortAssignment,
    SortError,
    SSet,
    STuple,
    is_dense_for_sorted_type,
    is_sparse_for_sorted_type,
    log2_sorted_domain_cardinality,
    parse_sorted_type,
    sorted_domain_cardinality,
    sorted_subobjects,
)
from repro.objects import Atom, atom, cset, parse_type
from repro.workloads import schedule_instance


@pytest.fixture
def schedule():
    return schedule_instance(130, n_days=7, n_teams=3)


@pytest.fixture
def sorts(schedule):
    return SortAssignment.by_prefix({"e": "emp", "d": "day"},
                                    schedule.atoms())


class TestSortAssignment:
    def test_by_prefix(self, sorts):
        assert sorts.sort_of(Atom("e005")) == "emp"
        assert sorts.sort_of(Atom("d03")) == "day"

    def test_counts(self, sorts):
        assert sorts.counts() == {"emp": 130, "day": 7}

    def test_unknown_atom(self, sorts):
        with pytest.raises(SortError):
            sorts.sort_of(Atom("zzz"))

    def test_atoms_of(self, sorts):
        assert len(sorts.atoms_of("day")) == 7

    def test_longest_prefix_wins(self):
        atoms = [Atom("ab1"), Atom("a1")]
        assignment = SortAssignment.by_prefix({"a": "one", "ab": "two"},
                                              atoms)
        assert assignment.sort_of(Atom("ab1")) == "two"
        assert assignment.sort_of(Atom("a1")) == "one"


class TestSortedTypes:
    def test_parse(self):
        styp = parse_sorted_type("[U@emp, {U@day}]")
        assert styp == STuple((SAtom("emp"), SSet(SAtom("day"))))

    def test_erase(self):
        styp = parse_sorted_type("{[U@emp, {U@day}]}")
        assert styp.erase() == parse_type("{[U,{U}]}")

    def test_parse_errors(self):
        with pytest.raises(SortError):
            parse_sorted_type("U")  # missing sort annotation
        with pytest.raises(SortError):
            parse_sorted_type("{U@}")

    def test_conforms(self, sorts):
        day_set = parse_sorted_type("{U@day}")
        assert day_set.conforms(cset(atom("d00"), atom("d01")), sorts)
        assert not day_set.conforms(cset(atom("e000")), sorts)
        assert day_set.conforms(cset(), sorts)  # empty set fits any sort


class TestSortedDomains:
    def test_cardinality(self, sorts):
        counts = sorts.counts()
        assert sorted_domain_cardinality(
            parse_sorted_type("{U@day}"), counts) == 2 ** 7
        assert sorted_domain_cardinality(
            parse_sorted_type("[U@emp, U@day]"), counts) == 130 * 7

    def test_log2(self, sorts):
        counts = sorts.counts()
        assert log2_sorted_domain_cardinality(
            parse_sorted_type("{U@emp}"), counts) == 130.0

    def test_unknown_sort(self):
        with pytest.raises(SortError):
            sorted_domain_cardinality(parse_sorted_type("{U@ghost}"), {})


class TestRemark41:
    """The remark's exact scenario: dense day-sets, sparse employee-sets."""

    def test_day_sets_fully_used(self, schedule, sorts):
        used = sorted_subobjects(schedule, parse_sorted_type("{U@day}"),
                                 sorts)
        assert len(used) == 2 ** 7  # every day subset occurs

    def test_employee_sets_barely_used(self, schedule, sorts):
        used = sorted_subobjects(schedule, parse_sorted_type("{U@emp}"),
                                 sorts)
        assert len(used) <= 4  # the teams (plus full-day overlap corner)

    def test_density_verdicts(self, schedule, sorts):
        day_sets = parse_sorted_type("{U@day}")
        emp_sets = parse_sorted_type("{U@emp}")
        assert is_dense_for_sorted_type(schedule, day_sets, sorts,
                                        degree=1, coefficient=2)
        assert is_sparse_for_sorted_type(schedule, emp_sets, sorts,
                                         degree=1, coefficient=2)
        assert not is_dense_for_sorted_type(schedule, emp_sets, sorts,
                                            degree=1, coefficient=2)

    def test_quantification_advice(self, schedule, sorts):
        """Remark 4.1's advice quantified: the day-set domain is the
        same size as its usage; the employee-set domain is 2^130 vs 4
        used — quantifying over it is 'not recommended'."""
        counts = sorts.counts()
        day_domain = sorted_domain_cardinality(
            parse_sorted_type("{U@day}"), counts)
        day_used = len(sorted_subobjects(
            schedule, parse_sorted_type("{U@day}"), sorts))
        assert day_domain == day_used
        emp_log_domain = log2_sorted_domain_cardinality(
            parse_sorted_type("{U@emp}"), counts)
        emp_used = len(sorted_subobjects(
            schedule, parse_sorted_type("{U@emp}"), sorts))
        assert emp_log_domain / max(emp_used, 1) > 30  # gap of many orders
