"""Tests for Lemma 4.3: CALC formulas defining the induced orders (E09)."""

import itertools

import pytest

from repro.core.evaluation import Evaluator
from repro.core.order_formulas import (
    ORDER_RELATION,
    less_than_formula,
    order_schema,
    with_order_relation,
)
from repro.core.syntax import Var
from repro.core.typecheck import check_formula
from repro.objects import (
    AtomOrder,
    Instance,
    compare,
    database_schema,
    materialize_domain,
    parse_type,
)

TYPES = ["U", "{U}", "[U,U]", "{[U,U]}", "[U,{U}]", "{{U}}", "[{U},{U}]"]


def _ordered_instance(labels: str) -> tuple[Instance, AtomOrder]:
    order = AtomOrder.from_labels(labels)
    base = database_schema(Seed=["U"])
    inst = Instance(base, {"Seed": [(a,) for a in order.atoms]})
    return with_order_relation(inst, order), order


class TestLemma43:
    @pytest.mark.parametrize("text", TYPES)
    def test_formula_agrees_with_native_order(self, text):
        """phi_{<_T}(x, y) holds iff x <_T y, over the entire domain."""
        typ = parse_type(text)
        inst, order = _ordered_instance("ab")
        lt = less_than_formula(typ)
        x, y = Var("x", typ), Var("y", typ)
        phi = lt(x, y)
        evaluator = Evaluator(inst.schema, max_domain_size=10 ** 6)
        domain = materialize_domain(typ, order.atoms)
        for left, right in itertools.product(domain, repeat=2):
            expected = compare(left, right, order) < 0
            got = evaluator.evaluate_formula(
                phi, inst, {"x": left, "y": right},
                free_variable_types={"x": typ, "y": typ},
            )
            assert got == expected, (left, right)

    def test_three_atom_set_order(self):
        """Spot-check with 3 atoms on the set type (512 pairs)."""
        typ = parse_type("{U}")
        inst, order = _ordered_instance("abc")
        lt = less_than_formula(typ)
        x, y = Var("x", typ), Var("y", typ)
        phi = lt(x, y)
        evaluator = Evaluator(inst.schema, max_domain_size=10 ** 6)
        domain = materialize_domain(typ, order.atoms)
        mismatches = [
            (left, right)
            for left, right in itertools.product(domain, repeat=2)
            if evaluator.evaluate_formula(
                phi, inst, {"x": left, "y": right},
                free_variable_types={"x": typ, "y": typ})
            != (compare(left, right, order) < 0)
        ]
        assert not mismatches

    def test_formula_is_plain_calc(self):
        """The order formulas use no fixpoint operators (Lemma 4.3 is
        about CALC_i^k proper)."""
        from repro.core.syntax import FixpointPred

        typ = parse_type("{[U,U]}")
        phi = less_than_formula(typ)(Var("x", typ), Var("y", typ))
        assert not any(
            isinstance(sub, FixpointPred) for sub in phi.walk()
        )

    def test_formula_level_within_ik(self):
        """phi_{<_T} for an <i,k>-type stays within CALC_i^max(k,2)."""
        typ = parse_type("{[U,U]}")  # <1,2>
        phi = less_than_formula(typ)(Var("x", typ), Var("y", typ))
        schema = order_schema(database_schema(Seed=["U"]))
        report = check_formula(phi, schema,
                               {"x": typ, "y": typ})
        assert report.set_height <= 1
        assert report.tuple_width <= 2

    def test_tuple_comparison_requires_variables(self):
        typ = parse_type("[U,U]")
        lt = less_than_formula(typ)
        from repro.core.syntax import Const

        with pytest.raises(ValueError):
            lt(Const(("a", "b")), Var("y", typ))


class TestWithOrderRelation:
    def test_strict_order_pairs(self):
        inst, order = _ordered_instance("abc")
        pairs = inst.relation(ORDER_RELATION)
        assert pairs.cardinality == 3  # ab, ac, bc
        assert (order.atoms[0], order.atoms[1]) in pairs
        assert (order.atoms[1], order.atoms[0]) not in pairs

    def test_schema_extended(self):
        inst, _ = _ordered_instance("ab")
        assert ORDER_RELATION in inst.schema
        assert inst.schema[ORDER_RELATION].arity == 2

    def test_original_relations_preserved(self):
        inst, _ = _ordered_instance("ab")
        assert inst.relation("Seed").cardinality == 2
