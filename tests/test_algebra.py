"""Tests for the nested relational algebra baseline (E20)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (
    AlgebraError,
    AndCond,
    BaseRel,
    ColEqCol,
    ColEqConst,
    ColInCol,
    Difference,
    Intersection,
    Join,
    Nest,
    NotCond,
    Powerset,
    Product,
    Project,
    Select,
    Union,
    Unnest,
    is_transitive,
    tc_via_loop,
    tc_via_powerset,
)
from repro.objects import CSet, atom, ctuple, database_schema, instance
from repro.workloads import chain_graph, cycle_graph, random_graph


@pytest.fixture
def p_instance():
    schema = database_schema(P=["U", "U"])
    return instance(schema, P=[("a", "b"), ("a", "c"), ("b", "c")])


class TestBasicOperators:
    def test_base_and_select(self, p_instance):
        expr = Select(BaseRel("P"), ColEqConst(1, atom("a")))
        rows = expr.evaluate(p_instance)
        assert len(rows) == 2

    def test_select_col_eq_col(self):
        schema = database_schema(P=["U", "U"])
        inst = instance(schema, P=[("a", "a"), ("a", "b")])
        rows = Select(BaseRel("P"), ColEqCol(1, 2)).evaluate(inst)
        assert rows == frozenset({(atom("a"), atom("a"))})

    def test_project_reorders(self, p_instance):
        rows = Project(BaseRel("P"), [2, 1]).evaluate(p_instance)
        assert (atom("b"), atom("a")) in rows

    def test_product(self, p_instance):
        rows = Product(BaseRel("P"), BaseRel("P")).evaluate(p_instance)
        assert len(rows) == 9

    def test_join(self, p_instance):
        # P join P on P.2 = P.1: composition pairs
        rows = Join(BaseRel("P"), BaseRel("P"), on=[(2, 1)]).evaluate(p_instance)
        projected = {(r[0], r[3]) for r in rows}
        assert projected == {(atom("a"), atom("c"))}

    def test_set_operations(self, p_instance):
        p = BaseRel("P")
        full = Union(p, p).evaluate(p_instance)
        assert len(full) == 3
        assert Difference(p, p).evaluate(p_instance) == frozenset()
        assert Intersection(p, p).evaluate(p_instance) == full

    def test_condition_combinators(self, p_instance):
        cond = AndCond(NotCond(ColEqConst(1, atom("b"))),
                       ColEqConst(2, atom("c")))
        rows = Select(BaseRel("P"), cond).evaluate(p_instance)
        assert rows == frozenset({(atom("a"), atom("c"))})


class TestNestUnnest:
    def test_nest_matches_paper_example(self, p_instance):
        """Nest on column 2 grouped by column 1 == Example 5.1's answer."""
        rows = Nest(BaseRel("P"), [1], [2]).evaluate(p_instance)
        as_strings = {f"[{r[0]}, {r[1]}]" for r in rows}
        assert as_strings == {"[a, {b, c}]", "[b, {c}]"}

    def test_unnest_inverts_nest(self, p_instance):
        nested = Nest(BaseRel("P"), [1], [2])
        roundtrip = Unnest(nested, 2).evaluate(p_instance)
        assert roundtrip == BaseRel("P").evaluate(p_instance)

    def test_nest_multi_column(self):
        schema = database_schema(R=["U", "U", "U"])
        inst = instance(schema, R=[("k", "a", "b"), ("k", "c", "d")])
        rows = Nest(BaseRel("R"), [1], [2, 3]).evaluate(inst)
        assert len(rows) == 1
        key, nested = next(iter(rows))
        assert key == atom("k")
        assert ctuple(atom("a"), atom("b")) in nested

    def test_unnest_on_stored_sets(self):
        schema = database_schema(R=["U", "{U}"])
        inst = instance(schema, R=[("k", {"a", "b"})])
        rows = Unnest(BaseRel("R"), 2).evaluate(inst)
        assert rows == frozenset({(atom("k"), atom("a")),
                                  (atom("k"), atom("b"))})

    def test_unnest_non_set_column(self, p_instance):
        with pytest.raises(AlgebraError):
            Unnest(BaseRel("P"), 1).evaluate(p_instance)

    def test_membership_condition(self):
        schema = database_schema(R=["U", "{U}"])
        inst = instance(schema, R=[("a", {"a", "b"}), ("c", {"b"})])
        rows = Select(BaseRel("R"), ColInCol(1, 2)).evaluate(inst)
        assert len(rows) == 1


class TestPowerset:
    def test_counts(self, p_instance):
        rows = Powerset(BaseRel("P")).evaluate(p_instance)
        assert len(rows) == 2 ** 3

    def test_members_are_subsets(self, p_instance):
        base = BaseRel("P").evaluate(p_instance)
        base_tuples = {ctuple(*row) for row in base}
        for (subset_value,) in Powerset(BaseRel("P")).evaluate(p_instance):
            assert isinstance(subset_value, CSet)
            assert set(subset_value.elements) <= base_tuples

    def test_cap(self, p_instance):
        with pytest.raises(AlgebraError):
            Powerset(BaseRel("P"), max_subsets=4).evaluate(p_instance)


class TestTransitiveClosureThreeWays:
    def test_loop_on_chain(self):
        closure = tc_via_loop(chain_graph(4))
        assert len(closure) == 6

    def test_loop_on_cycle(self):
        closure = tc_via_loop(cycle_graph(3))
        assert len(closure) == 9

    def test_powerset_matches_loop_small(self):
        for inst in (chain_graph(3), cycle_graph(3)):
            assert tc_via_powerset(inst) == tc_via_loop(inst)

    def test_powerset_matches_calc_ifp(self):
        from repro.core.evaluation import evaluate
        from repro.workloads import transitive_closure_query

        inst = chain_graph(3)
        calc = evaluate(transitive_closure_query("U"), inst)
        calc_pairs = frozenset((row.component(1), row.component(2))
                               for row in calc)
        assert tc_via_powerset(inst) == calc_pairs

    def test_is_transitive(self):
        a, b, c = atom("a"), atom("b"), atom("c")
        assert is_transitive(frozenset({(a, b), (b, c), (a, c)}))
        assert not is_transitive(frozenset({(a, b), (b, c)}))

    def test_powerset_cap(self):
        with pytest.raises(AlgebraError):
            tc_via_powerset(random_graph(8, p=0.5), max_subsets=1000)

    @given(st.integers(min_value=2, max_value=4))
    @settings(max_examples=3, deadline=None)
    def test_loop_is_idempotent(self, n):
        inst = cycle_graph(n)
        closure = tc_via_loop(inst)
        assert is_transitive(closure)
