"""Tests for the while language and its equivalence with CALC+PFP.

The paper's frame of reference (Sections 1 and 3): FO+PFP defines the
while queries [AV89].  We check the equivalence semantically on
canonical programs.
"""

import pytest

from repro.core.builder import V, exists, rel
from repro.core.evaluation import evaluate
from repro.core.while_lang import Assign, WhileChange, WhileError, WhileProgram, run_program
from repro.objects import atom, cset, database_schema, instance
from repro.workloads import pfp_transitive_closure_query, transitive_closure_query


@pytest.fixture
def graph():
    schema = database_schema(G=["{U}", "{U}"])
    a, b, c, d = (cset(atom(ch)) for ch in "abcd")
    return instance(schema, G=[(a, b), (b, c), (c, d), (d, b)])


def tc_program():
    """TC as a while program: T := edges; while T changes: T := T ∪ T∘G."""
    x, y, z = V("x", "{U}"), V("y", "{U}"), V("z", "{U}")
    G, T = rel("G"), rel("T")
    step = Assign("T", [x, y],
                  G(x, y) | T(x, y) | exists(z, T(x, z) & G(z, y)))
    return WhileProgram(
        variables={"T": ["{U}", "{U}"]},
        statements=[WhileChange("T", [step])],
        output="T",
    )


class TestExecution:
    def test_transitive_closure(self, graph):
        rows = run_program(tc_program(), graph)
        assert len(rows) == 3 + 9  # same as Example 3.1's closure

    def test_assignment_overwrites(self, graph):
        """Assignments are destructive (the non-inflationary essence)."""
        x, y = V("x", "{U}"), V("y", "{U}")
        G = rel("G")
        program = WhileProgram(
            variables={"T": ["{U}", "{U}"]},
            statements=[
                Assign("T", [x, y], G(x, y)),
                Assign("T", [x, y], G(y, x)),  # overwrite with reversal
            ],
            output="T",
        )
        rows = run_program(program, graph)
        edges = {(r.component(1), r.component(2))
                 for r in graph.relation("G")}
        assert rows == frozenset((b, a) for a, b in edges)

    def test_empty_initialisation(self, graph):
        x = V("x", "{U}")
        program = WhileProgram(
            variables={"X": ["{U}"]},
            statements=[Assign("X", [x], rel("X")(x) & rel("X")(x))],
            output="X",
        )
        assert run_program(program, graph) == frozenset()

    def test_divergence_detected(self, graph):
        """X := complement(X) oscillates forever: the program denotes an
        undefined result, like a diverging PFP."""
        x = V("x", "{U}")
        program = WhileProgram(
            variables={"X": ["{U}"]},
            statements=[WhileChange("X", [
                Assign("X", [x], ~rel("X")(x)),
            ])],
            output="X",
        )
        with pytest.raises(WhileError):
            run_program(program, graph, max_iterations=20)


class TestValidation:
    def test_undeclared_target(self):
        x = V("x", "{U}")
        with pytest.raises(WhileError):
            WhileProgram(variables={},
                         statements=[Assign("T", [x], rel("G")(x, x))],
                         output="T")

    def test_type_mismatch(self):
        x = V("x", "U")
        with pytest.raises(WhileError):
            WhileProgram(variables={"T": ["{U}"]},
                         statements=[Assign("T", [x], rel("G")(x, x))],
                         output="T")

    def test_undeclared_output(self):
        with pytest.raises(WhileError):
            WhileProgram(variables={"T": ["{U}"]}, statements=[], output="Z")

    def test_shadowing_database_relation(self, graph):
        x, y = V("x", "{U}"), V("y", "{U}")
        program = WhileProgram(
            variables={"G": ["{U}", "{U}"]},
            statements=[Assign("G", [x, y], rel("G")(x, y))],
            output="G",
        )
        with pytest.raises(WhileError):
            run_program(program, graph)


class TestEquivalenceWithPFP:
    """while = FO+PFP [AV89], realised on shared queries."""

    def test_tc_program_equals_pfp_query(self, graph):
        program_rows = run_program(tc_program(), graph)
        pfp_rows = frozenset(
            tuple(r.items)
            for r in evaluate(pfp_transitive_closure_query(), graph)
        )
        assert program_rows == pfp_rows

    def test_tc_program_equals_ifp_query(self, graph):
        """For monotone stages, while == fixpoint too."""
        program_rows = run_program(tc_program(), graph)
        ifp_rows = frozenset(
            tuple(r.items)
            for r in evaluate(transitive_closure_query(), graph)
        )
        assert program_rows == ifp_rows

    def test_non_inflationary_program_matches_pfp(self, graph):
        """A genuinely non-monotone loop: alternate a set with its
        complement a bounded number of times via a counter relation —
        here simplified: nodes-without-self-loop computed by an
        overwrite, agreeing with direct evaluation."""
        from repro.core.builder import query

        x, y = V("x", "{U}"), V("y", "{U}")
        G = rel("G")
        program = WhileProgram(
            variables={"X": ["{U}"]},
            statements=[
                Assign("X", [x], exists(y, G(x, y)) & ~G(x, x)),
            ],
            output="X",
        )
        rows = run_program(program, graph)
        direct = evaluate(
            query([x], exists(y, G(x, y)) & ~G(x, x)), graph)
        assert rows == frozenset(tuple(r.items) for r in direct)
