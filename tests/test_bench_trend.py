"""The cross-PR trend subsystem: legacy conversion, alignment across
mixed-format inputs, tolerance-driven regression flags, holes for
absent suites, and the ``repro bench --trend`` CLI including
``--migrate`` (satellite d of PR 5).

The committed ``BENCH_PR3.json`` (retired flat layout) and
``BENCH_PR4.json`` (schema 1) act as real-world goldens; the fabricated
documents pin down the flagging and hole semantics exactly.
"""

from __future__ import annotations

import json
import shutil

import pytest

from repro.bench import (
    build_trend,
    convert_legacy,
    is_legacy,
    label_for_path,
    load_documents,
    migrated_path,
    render_trend,
)
from repro.bench.trend import TrendError
from repro.cli import EXIT_ERROR, EXIT_FINDINGS, EXIT_OK, main


def _fake_document(rows: int, seconds: float = 0.5,
                   checksum: int = 2016) -> dict:
    """A minimal schema-1 document for seminaive-smoke, parameterised
    by its exact-tolerance counter ``datalog.rows_derived``."""
    return {
        "schema": 1,
        "experiment": "repro-bench",
        "suites": {
            "seminaive-smoke": {
                "name": "seminaive-smoke",
                "title": "t",
                "sizes": [8],
                "strategies": ["seminaive"],
                "points": [{
                    "n": 8, "strategy": "seminaive",
                    "seconds": seconds, "checksum": checksum,
                    "counters": {"datalog.rows_derived": rows,
                                 "ifp.stages": 8},
                    "histograms": {},
                }],
                "fits": {},
                "expectations": [],
                "gates": [],
            },
        },
    }


def _write(tmp_path, name: str, document: dict) -> str:
    path = tmp_path / name
    path.write_text(json.dumps(document))
    return str(path)


class TestLegacyConversion:
    def test_is_legacy_discriminates(self):
        assert is_legacy({"datalog": []})
        assert not is_legacy({"schema": 1, "suites": {}})

    def test_committed_pr3_converts_with_mapped_counters(self):
        with open("BENCH_PR3.json", encoding="utf-8") as handle:
            legacy = json.load(handle)
        converted = convert_legacy(legacy)
        assert converted["schema"] == 1
        assert converted["converted_from"] == "legacy-pr3-flat"
        assert sorted(converted["suites"]) == [
            "algebra-loop", "calc-ifp-dense", "seminaive-smoke"]
        smoke = converted["suites"]["seminaive-smoke"]
        assert smoke["strategies"] == ["naive", "seminaive"]
        point = smoke["points"][0]
        # Legacy per-strategy fields became observatory counter names,
        # closure_rows became the checksum.
        assert "datalog.rows_derived" in point["counters"]
        assert point["checksum"] == next(
            entry["closure_rows"] for entry in legacy["datalog"]
            if entry["n"] == point["n"])

    def test_label_extraction(self):
        assert label_for_path("BENCH_PR3.json") == "PR3"
        assert label_for_path("/some/dir/BENCH_PR12.json") == "PR12"
        assert label_for_path("custom.json") == "custom"

    def test_migrated_path(self):
        assert migrated_path("BENCH_PR3.json") == "BENCH_PR3.schema1.json"


class TestLoadDocuments:
    def test_mixed_inputs_sort_by_pr_number(self, tmp_path):
        newer = _write(tmp_path, "BENCH_PR10.json", _fake_document(2016))
        with open("BENCH_PR3.json", encoding="utf-8") as handle:
            legacy = json.load(handle)
        older = _write(tmp_path, "BENCH_PR3.json", legacy)
        records = load_documents([newer, older])  # glob order scrambled
        assert [r["label"] for r in records] == ["PR3", "PR10"]
        assert records[0]["legacy"] and not records[1]["legacy"]
        assert not is_legacy(records[0]["document"])  # converted

    def test_non_json_input_raises_trend_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(TrendError, match="not JSON"):
            load_documents([str(path)])


class TestBuildTrend:
    def test_real_pr3_pr4_mix_aligns_without_regressions(self, tmp_path):
        records = load_documents(["BENCH_PR3.json", "BENCH_PR4.json"])
        trend = build_trend(records)
        assert trend["prs"] == ["PR3", "PR4"]
        smoke = trend["suites"]["seminaive-smoke"]
        assert smoke["present"] == [True, True]
        rows = {(r["metric"], r["strategy"]): r for r in smoke["rows"]}
        derived = rows[("datalog.rows_derived", "seminaive")]
        assert derived["values"][0] == derived["values"][1]
        # Suites PR 3 predates render as holes, not crashes.
        hyper = trend["suites"]["hyper-domain"]
        assert hyper["present"] == [False, True]
        assert all(row["values"][0] is None for row in hyper["rows"])
        assert trend["regressions"] == []

    def test_fabricated_three_pr_regression_is_flagged(self, tmp_path):
        paths = [
            _write(tmp_path, "BENCH_PR3.json", _fake_document(2016)),
            _write(tmp_path, "BENCH_PR4.json", _fake_document(2016)),
            _write(tmp_path, "BENCH_PR5.json", _fake_document(2100)),
        ]
        trend = build_trend(load_documents(paths))
        assert len(trend["regressions"]) == 1
        flag = trend["regressions"][0]
        assert "datalog.rows_derived" in flag
        assert "PR4->PR5" in flag and "2016" in flag and "2100" in flag
        row = next(r for r in trend["suites"]["seminaive-smoke"]["rows"]
                   if r["metric"] == "datalog.rows_derived")
        assert row["regressions"] == ["PR5"]

    def test_seconds_never_flag(self, tmp_path):
        """Wall time is informational: a 100x slowdown renders in the
        table but produces no regression flag."""
        paths = [
            _write(tmp_path, "BENCH_PR4.json", _fake_document(2016, 0.1)),
            _write(tmp_path, "BENCH_PR5.json", _fake_document(2016, 10.0)),
        ]
        trend = build_trend(load_documents(paths))
        assert trend["regressions"] == []
        row = next(r for r in trend["suites"]["seminaive-smoke"]["rows"]
                   if r["metric"] == "seconds")
        assert row["deltas"][1] == pytest.approx(100.0)

    def test_checksum_change_is_flagged_exactly(self, tmp_path):
        paths = [
            _write(tmp_path, "BENCH_PR4.json", _fake_document(2016)),
            _write(tmp_path, "BENCH_PR5.json",
                   _fake_document(2016, checksum=9)),
        ]
        trend = build_trend(load_documents(paths))
        assert any("checksum" in flag for flag in trend["regressions"])

    def test_missing_suite_gap_renders_as_hole(self, tmp_path):
        gapless = _fake_document(2016)
        gapped = {"schema": 1, "experiment": "repro-bench", "suites": {}}
        paths = [
            _write(tmp_path, "BENCH_PR3.json", _fake_document(2016)),
            _write(tmp_path, "BENCH_PR4.json", gapped),
            _write(tmp_path, "BENCH_PR5.json", gapless),
        ]
        trend = build_trend(load_documents(paths))
        smoke = trend["suites"]["seminaive-smoke"]
        assert smoke["present"] == [True, False, True]
        for row in smoke["rows"]:
            assert row["values"][1] is None
        # The gap does not flag: PR3 -> PR5 values are equal.
        assert trend["regressions"] == []
        text = render_trend(trend)
        assert "(PR4: absent)" in text
        assert "—" in text

    def test_trend_json_round_trips(self, tmp_path):
        paths = [
            _write(tmp_path, "BENCH_PR4.json", _fake_document(2016)),
            _write(tmp_path, "BENCH_PR5.json", _fake_document(2016)),
        ]
        trend = build_trend(load_documents(paths))
        rebuilt = json.loads(json.dumps(trend))
        assert rebuilt == trend
        assert render_trend(rebuilt) == render_trend(trend)


class TestTrendCli:
    def test_text_report_over_committed_documents(self, capsys):
        code = main(["bench", "--trend", "BENCH_PR3.json",
                     "BENCH_PR4.json"])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "== seminaive-smoke" in out
        assert "no regressions flagged across PR3 -> PR4" in out

    def test_json_format(self, capsys):
        code = main(["bench", "--trend", "BENCH_PR3.json",
                     "BENCH_PR4.json", "--format", "json"])
        assert code == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "bench-trend"
        assert payload["prs"] == ["PR3", "PR4"]

    def test_regression_sets_findings_exit_code(self, tmp_path, capsys):
        paths = [
            _write(tmp_path, "BENCH_PR4.json", _fake_document(2016)),
            _write(tmp_path, "BENCH_PR5.json", _fake_document(2100)),
        ]
        assert main(["bench", "--trend", *paths]) == EXIT_FINDINGS
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "FAIL:" in captured.err

    def test_migrate_writes_schema1_rewrite(self, tmp_path, capsys):
        legacy_copy = str(tmp_path / "BENCH_PR3.json")
        shutil.copy("BENCH_PR3.json", legacy_copy)
        code = main(["bench", "--trend", legacy_copy, "--migrate"])
        assert code == EXIT_OK
        rewritten = tmp_path / "BENCH_PR3.schema1.json"
        assert rewritten.exists()
        document = json.loads(rewritten.read_text())
        assert document["schema"] == 1
        assert "seminaive-smoke" in document["suites"]
        # The rewrite is accepted where the legacy layout is rejected:
        # as a --baseline for the suites it covers.
        code = main(["bench", "--suite", "seminaive-smoke",
                     "--sizes", "8,16", "--baseline", str(rewritten)])
        assert code == EXIT_OK

    def test_migrate_without_trend_is_a_usage_error(self, capsys):
        assert main(["bench", "--migrate"]) == EXIT_ERROR
        assert "--migrate" in capsys.readouterr().err

    def test_missing_trend_file_is_a_usage_error(self, tmp_path, capsys):
        code = main(["bench", "--trend", str(tmp_path / "absent.json")])
        assert code == EXIT_ERROR
