"""The observability layer: tracer on/off, counter values on known
queries, JSON round-trips, and golden CLI output for ``repro profile``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.evaluation import evaluate
from repro.core.safety import evaluate_range_restricted
from repro.datalog import Literal, Program, Rule, evaluate_inflationary
from repro.obs import (
    NULL_TRACER,
    Tracer,
    get_tracer,
    render_tree,
    set_tracer,
    summary_table,
    trace_from_json,
    trace_to_json,
    use_tracer,
)
from repro.workloads import transitive_closure_query

TC_QUERY_TEXT = (
    "{[x:{U}, y:{U}] | ifp[S(x:{U}, y:{U})](G(x,y) or "
    "exists z:{U} (S(x,z) and G(z,y)))(x, y)}"
)


@pytest.fixture
def chain_graph():
    """The CLI example graph: {a} -> {b} -> {c} over set-typed nodes."""
    from repro.workloads import singleton_chain

    return singleton_chain("abc")


@pytest.fixture
def graph_file(chain_graph, tmp_path):
    from repro.objects.io import instance_to_json

    path = tmp_path / "graph.json"
    path.write_text(json.dumps(instance_to_json(chain_graph)))
    return str(path)


class TestTracerCore:
    def test_span_nesting_and_events(self):
        tracer = Tracer()
        with tracer.span("outer", tag="a") as outer:
            tracer.event("point", n=1)
            with tracer.span("inner") as inner:
                inner.set(rows=7)
        assert [s.name for s in tracer.root.children] == ["outer"]
        assert outer.attrs == {"tag": "a"}
        assert [e.name for e in outer.events] == ["point"]
        assert outer.children[0].attrs == {"rows": 7}
        assert outer.end is not None and outer.end >= outer.start

    def test_counters_and_gauges(self):
        tracer = Tracer()
        tracer.count("hits")
        tracer.count("hits", 4)
        tracer.gauge("size", 10)
        tracer.gauge("size", 3)
        assert tracer.counters == {"hits": 5, "size": 3}

    def test_event_cap_drops_and_accounts(self):
        tracer = Tracer(max_events=2)
        for i in range(5):
            tracer.event("e", i=i)
        assert len(tracer.root.events) == 2
        assert tracer.dropped_events == 3
        assert "3 event(s) dropped" in render_tree(tracer)

    def test_name_does_not_collide_with_attrs(self):
        tracer = Tracer()
        with tracer.span("fixpoint", name="S", kind="ifp") as span:
            tracer.event("range", name="x", size=2)
        assert span.attrs["name"] == "S"
        assert span.events[0].attrs == {"name": "x", "size": 2}

    def test_default_tracer_is_noop_and_restored(self):
        assert get_tracer() is NULL_TRACER
        tracer = Tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
            with use_tracer(NULL_TRACER):
                assert get_tracer() is NULL_TRACER
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER
        set_tracer(tracer)
        assert get_tracer() is tracer
        set_tracer(None)
        assert get_tracer() is NULL_TRACER

    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("anything", x=1) as span:
            span.set(rows=5)
        NULL_TRACER.event("e")
        NULL_TRACER.count("c")
        NULL_TRACER.gauge("g", 1)
        assert not NULL_TRACER.enabled


class TestEvaluationCounters:
    def test_tc_active_domain_counters(self, chain_graph):
        tracer = Tracer()
        with use_tracer(tracer):
            answer = evaluate(transitive_closure_query(), chain_graph)
        assert len(answer) == 3
        # The chain {a}->{b}->{c} closes in 2 growing stages + 1
        # convergence check.
        assert tracer.counters["ifp.stages"] == 3
        assert tracer.counters["eval.fixpoint_stages"] == 3
        # One materialised domain: dom({U}) over 3 atoms = 2**3 values.
        assert tracer.counters["domains.materialized"] == 1
        assert tracer.counters["domain[{U}]"] == 8
        stages = [e for e in _all_events(tracer) if e.name == "ifp.stage"]
        assert [e.attrs["delta"] for e in stages] == [2, 1, 0]
        assert [e.attrs["size"] for e in stages] == [2, 3, 3]

    def test_tc_range_restricted_counters(self, chain_graph):
        tracer = Tracer()
        with use_tracer(tracer):
            report = evaluate_range_restricted(
                transitive_closure_query(), chain_graph)
        assert len(report.answer) == 3
        # Restricted evaluation materialises no domains; every variable
        # gets a polynomial range instead.
        assert "domains.materialized" not in tracer.counters
        assert tracer.counters["rr.evaluations"] == 1
        assert tracer.counters["range[x]"] == 2  # sources of G
        assert tracer.counters["range[y]"] == 2  # targets of G
        assert tracer.counters["ifp.stages"] == 3

    def test_tracing_off_has_no_observable_state(self, chain_graph):
        answer = evaluate(transitive_closure_query(), chain_graph)
        assert len(answer) == 3
        assert get_tracer() is NULL_TRACER

    def test_datalog_dedup_counters(self, chain_graph):
        program = Program(
            rules=[
                Rule(Literal("T", ["x", "y"]), [Literal("G", ["x", "y"])]),
                Rule(Literal("T", ["x", "y"]),
                     [Literal("T", ["x", "z"]), Literal("G", ["z", "y"])]),
            ],
            idb_types={"T": ["{U}", "{U}"]},
        )
        tracer = Tracer()
        with use_tracer(tracer):
            result = evaluate_inflationary(program, chain_graph,
                                           strategy="naive")
        assert len(result["T"]) == 3
        assert tracer.counters["ifp.stages"] == 3
        # Naive evaluation re-derives earlier-stage rows every stage.
        assert tracer.counters["datalog.rows_derived"] > 3
        assert tracer.counters["datalog.dedup_hits"] >= 1
        assert tracer.counters["datalog.rows_derived"] - \
            tracer.counters["datalog.dedup_hits"] == 3

    def test_datalog_seminaive_counters(self, chain_graph):
        """The semi-naive default derives each closure row exactly once
        and reports the naive re-derivations it skipped."""
        program = Program(
            rules=[
                Rule(Literal("T", ["x", "y"]), [Literal("G", ["x", "y"])]),
                Rule(Literal("T", ["x", "y"]),
                     [Literal("T", ["x", "z"]), Literal("G", ["z", "y"])]),
            ],
            idb_types={"T": ["{U}", "{U}"]},
        )
        tracer = Tracer()
        with use_tracer(tracer):
            result = evaluate_inflationary(program, chain_graph)
        assert len(result["T"]) == 3
        assert tracer.counters["ifp.stages"] == 3
        assert tracer.counters["datalog.rows_derived"] == 3
        assert "datalog.dedup_hits" not in tracer.counters
        assert tracer.counters["datalog.delta_rows"] == 3
        assert tracer.counters["datalog.refires_avoided"] > 0

    def test_algebra_operator_spans(self, chain_graph):
        from repro.algebra import BaseRel, Join, Project

        expr = Project(Join(BaseRel("G"), BaseRel("G"), on=[(2, 1)]),
                       [1, 4])
        tracer = Tracer()
        with use_tracer(tracer):
            rows = expr.evaluate(chain_graph)
        assert len(rows) == 1  # ({a}, {c})
        names = [s.name for s in _all_spans(tracer)]
        assert names.count("algebra.BaseRel") == 2
        assert "algebra.Join" in names and "algebra.Project" in names
        project_span = next(s for s in _all_spans(tracer)
                            if s.name == "algebra.Project")
        assert project_span.attrs["rows"] == 1
        assert tracer.counters["algebra.operator_applications"] == 4


class TestJsonRoundTrip:
    def test_round_trip_equality(self, chain_graph):
        tracer = Tracer()
        with use_tracer(tracer):
            evaluate(transitive_closure_query(), chain_graph)
        document = trace_to_json(tracer)
        # JSON-serialisable end to end.
        rebuilt = trace_from_json(json.loads(json.dumps(document)))
        assert trace_to_json(rebuilt) == document
        assert render_tree(rebuilt, times=False) == \
            render_tree(tracer, times=False)
        assert summary_table(rebuilt) == summary_table(tracer)

    def test_empty_tracer_round_trips(self):
        tracer = Tracer()
        document = trace_to_json(tracer)
        assert trace_to_json(trace_from_json(document)) == document
        assert summary_table(tracer) == "(no counters recorded)"


GOLDEN_PROFILE = """\
mode: active
== trace ==
trace
  load_instance
  parse_query
  query head=['x', 'y'] rows=3
    • domain type={U} cardinality=8
    • enumerate vars=['x', 'y'] sizes=[8, 8] product=64
    fixpoint name=S kind=ifp strategy=seminaive rows=3
      • enumerate vars=['z'] sizes=[8] product=8
      • ifp.stage stage=1 size=2 delta=2
      • ifp.stage stage=2 size=3 delta=1
      • ifp.stage stage=3 size=3 delta=0
== counters ==
domain[{U}]                 8
domains.materialized        1
eval.atom_checks            1759
eval.delta_rows             3
eval.enumerations           189
eval.fixpoint_cache_hits    63
eval.fixpoint_stages        3
eval.formula_checks         3606
eval.quantifier_iterations  1731
eval.stage_skips            5
ifp.stages                  3
space.answer_nodes          15
space.domain_nodes          20
space.domain_values         8
space.peak_fixpoint_rows    3
== metrics ==
space.domain_cardinality  count=1 min=8 mean=8 p50=8 p90=8 max=8
space.fixpoint_rows       count=1 min=3 mean=3 p50=3 p90=3 max=3
space.ifp.stage_rows      count=3 min=2 mean=2.67 p50=3 p90=3 max=3
-- 3 tuple(s)
"""

GOLDEN_PROFILE_NAIVE = """\
mode: active
== trace ==
trace
  load_instance
  parse_query
  query head=['x', 'y'] rows=3
    • domain type={U} cardinality=8
    • enumerate vars=['x', 'y'] sizes=[8, 8] product=64
    fixpoint name=S kind=ifp strategy=naive rows=3
      • enumerate vars=['z'] sizes=[8] product=8
      • ifp.stage stage=1 size=2 delta=2
      • ifp.stage stage=2 size=3 delta=1
      • ifp.stage stage=3 size=3 delta=0
== counters ==
domain[{U}]                 8
domains.materialized        1
eval.atom_checks            1768
eval.enumerations           190
eval.fixpoint_cache_hits    63
eval.fixpoint_stages        3
eval.formula_checks         3624
eval.quantifier_iterations  1734
ifp.stages                  3
space.answer_nodes          15
space.domain_nodes          20
space.domain_values         8
space.peak_fixpoint_rows    3
== metrics ==
space.domain_cardinality  count=1 min=8 mean=8 p50=8 p90=8 max=8
space.fixpoint_rows       count=1 min=3 mean=3 p50=3 p90=3 max=3
space.ifp.stage_rows      count=3 min=2 mean=2.67 p50=3 p90=3 max=3
-- 3 tuple(s)
"""


class TestCli:
    def test_profile_golden(self, graph_file, capsys):
        status = main(["profile", graph_file, TC_QUERY_TEXT,
                       "--mode", "active", "--no-times"])
        assert status == 0
        assert capsys.readouterr().out == GOLDEN_PROFILE

    def test_profile_golden_naive(self, graph_file, capsys):
        status = main(["profile", graph_file, TC_QUERY_TEXT,
                       "--mode", "active", "--no-times",
                       "--strategy", "naive"])
        assert status == 0
        assert capsys.readouterr().out == GOLDEN_PROFILE_NAIVE

    def test_profile_json_export(self, graph_file, capsys):
        status = main(["profile", graph_file, TC_QUERY_TEXT,
                       "--mode", "active", "--json"])
        assert status == 0
        document = json.loads(capsys.readouterr().out)
        assert document["mode"] == "active"
        assert document["answer_rows"] == 3
        assert document["counters"]["ifp.stages"] == 3
        stages = [e for e in _json_events(document["trace"])
                  if e["name"] == "ifp.stage"]
        assert [e["attrs"]["delta"] for e in stages] == [2, 1, 0]
        domains = [e for e in _json_events(document["trace"])
                   if e["name"] == "domain"]
        assert [(e["attrs"]["type"], e["attrs"]["cardinality"])
                for e in domains] == [("{U}", 8)]

    def test_query_trace_flag(self, graph_file, capsys):
        status = main(["query", graph_file, TC_QUERY_TEXT, "--trace",
                       "--stats"])
        assert status == 0
        captured = capsys.readouterr()
        assert captured.out.count("\n") == 3  # the three answer rows
        assert "ifp.stage stage=1" in captured.err
        assert "range var=x size=2" in captured.err  # rr path in auto mode
        assert "ifp.stages" in captured.err

    def test_query_trace_json_flag(self, graph_file, tmp_path, capsys):
        out = tmp_path / "trace.json"
        status = main(["query", graph_file, TC_QUERY_TEXT,
                       "--trace-json", str(out)])
        assert status == 0
        capsys.readouterr()
        document = json.loads(out.read_text())
        assert document["counters"]["ifp.stages"] == 3
        assert trace_to_json(trace_from_json(document)) == document

    def test_query_untraced_output_unchanged(self, graph_file, capsys):
        status = main(["query", graph_file, TC_QUERY_TEXT])
        assert status == 0
        captured = capsys.readouterr()
        assert captured.out.count("\n") == 3
        assert captured.err.strip() == "-- 3 tuple(s)"

    def test_auto_fallback_is_reported(self, graph_file, capsys):
        status = main(["query", graph_file,
                       "{[x:{U}] | not (exists y:{U} (G(x,y)))}",
                       "--trace"])
        assert status == 0
        captured = capsys.readouterr()
        assert "falling back to active-domain semantics" in captured.err
        assert "not range restricted" in captured.err
        assert "• fallback to=active" in captured.err


def _all_spans(tracer):
    def walk(span):
        yield span
        for child in span.children:
            yield from walk(child)

    return list(walk(tracer.root))


def _all_events(tracer):
    return [event for span in _all_spans(tracer) for event in span.events]


def _json_events(span_doc):
    yield from span_doc["events"]
    for child in span_doc["children"]:
        yield from _json_events(child)
