"""Tests for C-safe evaluation (Definition 5.1, Proposition 5.1,
Theorem 5.2; E14)."""


from repro.core.builder import V, eq, exists, forall, query, rel
from repro.core.evaluation import Evaluator, evaluate
from repro.core.order_formulas import ORDER_RELATION, with_order_relation
from repro.core.safety import (
    SafeEvaluationReport,
    evaluate_range_restricted,
    safety_diagnostics,
    verify_safety,
)
from repro.objects import atom, database_schema, instance
from repro.workloads import bipartite_query, chain_graph, nest_query


class TestSafeEvaluation:
    def test_report_fields(self):
        schema = database_schema(P=["U", "U"])
        inst = instance(schema, P=[("a", "b")])
        report = evaluate_range_restricted(nest_query(), inst)
        assert isinstance(report, SafeEvaluationReport)
        assert report.range_sizes["x"] >= 1
        assert len(report.answer) == 1

    def test_restricted_equals_active_on_empty_instance(self):
        schema = database_schema(P=["U", "U"])
        inst = instance(schema, P=[("a", "a")])
        empty = inst.with_relation("P", [])
        # no atoms at all: both semantics give the empty answer
        report = evaluate_range_restricted(nest_query(), empty)
        assert report.answer == frozenset()

    def test_diagnostics_empty_for_rr(self):
        schema = database_schema(P=["U", "U"])
        assert safety_diagnostics(nest_query(), schema) == []

    def test_diagnostics_for_non_rr(self):
        schema = database_schema(G=["U", "U"])
        messages = safety_diagnostics(bipartite_query(), schema)
        assert messages
        assert all(isinstance(m, str) for m in messages)


class TestTheorem52:
    """Ordered inputs: RR queries with the explicit ``<_U`` relation.

    Theorem 5.2: with LTU given, RR-(CALC+IFP+<_U) captures PTIME on
    ordered inputs.  We check the machinery composes: queries may use
    LTU like any database relation and remain range restricted.
    """

    def test_order_relation_is_a_database_relation(self):
        inst = with_order_relation(chain_graph(3))
        assert ORDER_RELATION in inst.schema
        # strict order: n(n-1)/2 pairs
        assert inst.relation(ORDER_RELATION).cardinality == 3

    def test_minimum_query_over_ordered_input(self):
        """'The <_U-least node of the graph' — needs the order, is RR."""
        inst = with_order_relation(chain_graph(3))
        x, y = V("x", "U"), V("y", "U")
        node = (exists(V("w", "U"), rel("G")(x, V("w", "U")))
                | exists(V("w2", "U"), rel("G")(V("w2", "U"), x)))
        is_least = forall(y, rel(ORDER_RELATION)(y, x).implies(
            ~ (exists(V("u", "U"), rel("G")(y, V("u", "U")))
               | exists(V("u2", "U"), rel("G")(V("u2", "U"), y)))))
        q = query([x], node & is_least)
        report = evaluate_range_restricted(q, inst)
        assert {str(t) for t in report.answer} == {"[a00]"}
        assert verify_safety(q, inst)

    def test_even_cardinality_query(self):
        """Parity of the node count — inexpressible without order in
        plain calculus, expressible with LTU + IFP (the flat capture)."""
        from repro.core.builder import ifp

        # EvenUpTo(x): the prefix up to x (inclusive) has even size.
        # We iterate over successor pairs: Odd(x) for first element,
        # alternating via the strict order's immediate-successor relation.
        inst = with_order_relation(chain_graph(4))
        x = V("x", "U")
        lt = rel(ORDER_RELATION)
        z1, z2, z3 = V("z1", "U"), V("z2", "U"), V("z3", "U")
        # Odd positions: the least element, then successors of successors.
        least = ~exists(z1, lt(z1, x))
        w1, w2 = V("w1", "U"), V("w2", "U")
        odd = ifp("Odd", [x],
                  least | exists([w1, w2],
                                 rel("Odd")(w1)
                                 & lt(w1, w2)
                                 & ~exists(z2, lt(w1, z2) & lt(z2, w2))
                                 & lt(w2, x)
                                 & ~exists(z3, lt(w2, z3) & lt(z3, x))))
        q = query([x], odd(x))
        answers = {str(t) for t in evaluate(q, inst)}
        assert answers == {"[a00]", "[a02]"}  # positions 1 and 3


class TestRestrictedSemanticsDetails:
    def test_explicit_variable_ranges(self):
        """Evaluator honours hand-supplied ranges (restricted-domain
        semantics is a first-class mode, per Section 5's Definition 5.1)."""
        schema = database_schema(P=["U", "U"])
        inst = instance(schema, P=[("a", "b"), ("b", "c")])
        x = V("x", "U")
        q = query([x], eq(x, x))
        full = evaluate(q, inst)
        assert len(full) == 3
        narrowed = Evaluator(
            schema, variable_ranges={"x": {atom("a")}}
        ).evaluate(q, inst)
        assert {str(t) for t in narrowed} == {"[a]"}

    def test_union_range_soundness(self):
        """Enlarging ranges (within the active domain) never changes the
        answer of an RR query — the soundness argument for union ranges."""
        schema = database_schema(P=["U", "U"])
        inst = instance(schema, P=[("a", "b"), ("b", "c")])
        from repro.core.range_restriction import compute_ranges

        base = compute_ranges(nest_query(), inst)
        enlarged = {name: set(values) | {atom("a"), atom("b"), atom("c")}
                    if name in ("x", "y", "z") else set(values)
                    for name, values in base.items()}
        answer_base = Evaluator(schema, variable_ranges=base).evaluate(
            nest_query(), inst)
        answer_big = Evaluator(schema, variable_ranges=enlarged).evaluate(
            nest_query(), inst)
        assert answer_base == answer_big
