"""Stage-count regressions for the delta-driven strategy (PR 3).

The semi-naive claim is quantitative, not just behavioural: on a chain
graph the delta-rewritten Datalog TC derives each closure edge exactly
once (O(n) fresh rows per stage, O(n^2) total work), where the naive
strategy re-derives the whole closure every stage (O(n^3) total).
These tests pin the exact derivation counts via the obs counters, so a
regression in the rewrite (e.g. a delta variant reading the full IDB)
shows up as a count change, not a silent slowdown.
"""

from __future__ import annotations

from repro.core.builder import V, eq, exists, rel
from repro.core.builder import query as build_query
from repro.core.evaluation import Evaluator, evaluate
from repro.datalog import Literal, Program, Rule, evaluate_inflationary
from repro.obs import Tracer, use_tracer
from repro.workloads import chain_graph, transitive_closure_query


def tc_program() -> Program:
    return Program(
        [Rule(Literal("T", ["x", "y"]), [Literal("G", ["x", "y"])]),
         Rule(Literal("T", ["x", "y"]),
              [Literal("T", ["x", "z"]), Literal("G", ["z", "y"])])],
        idb_types={"T": ["U", "U"]},
    )


def _closure_size(n: int) -> int:
    return n * (n - 1) // 2


def _datalog_counters(n: int, strategy: str, intern: bool = False) -> dict:
    tracer = Tracer()
    with use_tracer(tracer):
        result = evaluate_inflationary(tc_program(), chain_graph(n),
                                       strategy=strategy, intern=intern)
    assert len(result["T"]) == _closure_size(n)
    return dict(tracer.counters)


class TestDatalogDerivationCounts:
    def test_seminaive_derives_each_row_exactly_once(self):
        """chain_graph(64): 2016 closure rows, 2016 derivations, zero
        duplicate hits — the headline guarantee of the delta rewrite."""
        counters = _datalog_counters(64, "seminaive")
        assert counters["datalog.rows_derived"] == 2016
        assert counters["datalog.delta_rows"] == 2016
        assert "datalog.dedup_hits" not in counters
        assert counters["datalog.refires_avoided"] > 0

    def test_naive_rederives_quadratically(self):
        """The naive strategy re-fires settled rows every stage: on a
        chain of n nodes it touches sum-of-closure-prefixes many rows,
        strictly more than the closure itself from n=3 on."""
        n = 16
        naive = _datalog_counters(n, "naive")
        seminaive = _datalog_counters(n, "seminaive")
        closure = _closure_size(n)
        assert seminaive["datalog.rows_derived"] == closure
        assert naive["datalog.rows_derived"] > 3 * closure
        assert naive["datalog.dedup_hits"] > 0
        # Identical stage counts: the rewrite changes work, not states.
        assert naive["ifp.stages"] == seminaive["ifp.stages"]

    def test_refires_avoided_grows_with_chain_length(self):
        small = _datalog_counters(8, "seminaive")
        large = _datalog_counters(16, "seminaive")
        assert (large["datalog.refires_avoided"]
                > small["datalog.refires_avoided"])


class TestInternedDerivationCounts:
    """PR 8's indexed kernel: same derivation discipline as the object
    semi-naive engine, but each join resolves by hash-index probe."""

    def test_interned_derives_each_row_exactly_once(self):
        counters = _datalog_counters(64, "seminaive", intern=True)
        assert counters["datalog.rows_derived"] == 2016
        assert counters["datalog.delta_rows"] == 2016
        assert "datalog.dedup_hits" not in counters

    def test_index_probes_bounded_by_closure(self):
        """chain_graph(64): the planner scans Δ::T and probes the
        (persistent) G index on its bound position, so the recursive
        rule costs exactly one probe per derived closure row — 2016
        probes against one index build.  A scanning join would touch
        ~|G| rows per delta row: 63 * 2016 = 127,008 row visits."""
        counters = _datalog_counters(64, "seminaive", intern=True)
        closure = _closure_size(64)
        assert counters["eval.index_builds"] >= 1
        assert counters["eval.index_probes"] == closure
        assert counters["eval.index_probes"] < 63 * closure

    def test_interned_matches_object_engine_counters(self):
        """Derivation/stage counters are a bijection-invariant of the
        run: identical between object and interned engines."""
        plain = _datalog_counters(16, "seminaive")
        interned = _datalog_counters(16, "seminaive", intern=True)
        for key in ("datalog.rows_derived", "datalog.delta_rows",
                    "datalog.refires_avoided", "ifp.stages"):
            assert plain[key] == interned[key], key
        assert interned["space.interned_values"] == 16

    def test_probe_count_scales_with_closure_not_product(self):
        small = _datalog_counters(16, "seminaive", intern=True)
        large = _datalog_counters(32, "seminaive", intern=True)
        assert small["eval.index_probes"] == _closure_size(16)
        assert large["eval.index_probes"] == _closure_size(32)


class TestCalcDeltaCounters:
    def _counters(self, n: int, strategy: str) -> dict:
        tracer = Tracer()
        with use_tracer(tracer):
            result = evaluate(transitive_closure_query("U"), chain_graph(n),
                              strategy=strategy)
        assert len(result) == _closure_size(n)
        return dict(tracer.counters)

    def test_delta_rows_match_closure(self):
        """Semi-naive calculus TC: every closure row enters the fixpoint
        as a delta row exactly once; settled candidates are skipped."""
        counters = self._counters(8, "seminaive")
        assert counters["eval.delta_rows"] == _closure_size(8)
        assert counters["eval.stage_skips"] > 0

    def test_naive_has_no_delta_counters(self):
        counters = self._counters(8, "naive")
        assert "eval.delta_rows" not in counters
        assert "eval.stage_skips" not in counters

    def test_stage_counts_identical(self):
        naive = self._counters(8, "naive")
        seminaive = self._counters(8, "seminaive")
        assert naive["ifp.stages"] == seminaive["ifp.stages"]
        assert naive["eval.fixpoint_stages"] == seminaive["eval.fixpoint_stages"]


class TestSatisfyMemo:
    def test_closed_subformula_memoized(self):
        """A closed subformula over EDB relations only is evaluated once
        and served from the memo for every other outer binding."""
        inst = chain_graph(4)
        x, y, z = V("x", "U"), V("y", "U"), V("z", "U")
        q = build_query([x, y], rel("G")(x, y) & exists(z, eq(z, z)))
        evaluator = Evaluator(inst.schema, strategy="seminaive")
        evaluator.evaluate(q, inst)
        assert evaluator.last_stats["satisfy_memo_hits"] > 0

    def test_naive_never_memoizes(self):
        inst = chain_graph(4)
        x, y, z = V("x", "U"), V("y", "U"), V("z", "U")
        q = build_query([x, y], rel("G")(x, y) & exists(z, eq(z, z)))
        evaluator = Evaluator(inst.schema, strategy="naive")
        evaluator.evaluate(q, inst)
        assert evaluator.last_stats["satisfy_memo_hits"] == 0
