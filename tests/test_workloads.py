"""Tests for the workload generators."""

import pytest

from repro.objects import parse_type
from repro.workloads import (
    all_subsets_instance,
    atoms_universe,
    bipartite_graph,
    chain_graph,
    course_catalog_dense,
    course_catalog_sparse,
    cycle_graph,
    full_domain_instance,
    random_graph,
    set_chain_graph,
    set_random_graph,
    sparse_chain_family,
    verso_instance,
)


class TestAtomsUniverse:
    def test_distinct_sortable(self):
        atoms = atoms_universe(12)
        assert len(set(atoms)) == 12
        labels = [a.label for a in atoms]
        assert labels == sorted(labels)

    def test_prefix(self):
        atoms = atoms_universe(3, prefix="c")
        assert all(str(a.label).startswith("c") for a in atoms)


class TestDenseGenerators:
    def test_full_domain_counts(self):
        inst = full_domain_instance("{U}", 4)
        assert inst.cardinality == 16

    def test_full_domain_pair_sets(self):
        inst = full_domain_instance("{[U,U]}", 2)
        assert inst.cardinality == 16  # 2^(2^2)

    def test_full_domain_cap(self):
        from repro.objects.domains import DomainTooLarge

        with pytest.raises(DomainTooLarge):
            full_domain_instance("{[U,U]}", 5, max_size=1000)

    def test_all_subsets(self):
        inst = all_subsets_instance(5)
        assert inst.cardinality == 32
        assert inst.schema["R"].column_types == (parse_type("{U}"),)

    def test_course_catalog_dense(self):
        inst = course_catalog_dense(4)
        assert inst.cardinality == 16


class TestSparseGenerators:
    def test_sparse_chain(self):
        inst = sparse_chain_family(5)
        assert inst.cardinality == 4
        assert len(inst.atoms()) == 5

    def test_verso_keys_unique(self):
        inst = verso_instance(8)
        keys = [row.component(1) for row in inst.relation("R")]
        assert len(set(keys)) == len(keys) == 8

    def test_verso_deterministic(self):
        assert verso_instance(6, seed=3) == verso_instance(6, seed=3)
        assert verso_instance(6, seed=3) != verso_instance(6, seed=4)

    def test_course_catalog_sparse_counts(self):
        inst = course_catalog_sparse(6, max_simultaneous=2)
        assert inst.cardinality == 1 + 6 + 15


class TestGraphs:
    def test_chain(self):
        inst = chain_graph(5)
        assert inst.relation("G").cardinality == 4

    def test_cycle(self):
        inst = cycle_graph(5)
        assert inst.relation("G").cardinality == 5

    def test_cycle_of_one(self):
        assert cycle_graph(1).relation("G").cardinality == 0

    def test_random_graph_deterministic(self):
        assert random_graph(6, 0.4, seed=1) == random_graph(6, 0.4, seed=1)
        assert random_graph(6, 0.4, seed=1) != random_graph(6, 0.4, seed=2)

    def test_bipartite_edges_cross(self):
        inst = bipartite_graph(3, 3, p=1.0)
        for row in inst.relation("G"):
            assert str(row.component(1).label).startswith("l")
            assert str(row.component(2).label).startswith("r")

    def test_set_chain_nodes_are_sets(self):
        inst = set_chain_graph(3)
        assert inst.schema["G"].column_types[0] == parse_type("{U}")
        assert inst.relation("G").cardinality == 6  # 7 subsets - 1

    def test_set_chain_length_cap(self):
        inst = set_chain_graph(4, length=5)
        assert inst.relation("G").cardinality == 4

    def test_set_random_graph_node_count(self):
        inst = set_random_graph(4, 6, p=1.0)
        nodes = {row.component(1) for row in inst.relation("G")}
        nodes |= {row.component(2) for row in inst.relation("G")}
        assert len(nodes) == 6
