"""The CLI exit-code convention, uniform across subcommands.

* ``0`` — success, nothing at/above the failure threshold.
* ``1`` — findings: a non-range-restricted query, lint diagnostics at
  or above ``--fail-on``.
* ``2`` — usage or load errors: malformed arguments, unreadable
  instance files, unknown diagnostic codes.
"""

import json

import pytest

from repro.cli import EXIT_ERROR, EXIT_FINDINGS, EXIT_OK, main
from repro.objects import atom, cset, database_schema, dump_instance, instance

SAFE = ("{[x:{U}, y:{U}] | ifp[S(x:{U}, y:{U})]"
        "(G(x,y) or exists z:{U} (S(x,z) and G(z,y)))(x, y)}")
UNSAFE = "{[x:{U}] | not G(x, x)}"
#: Range restricted, but carries a COST001 *warning* (s has set height 1
#: over a flat schema) — distinguishes --fail-on error from warning.
WARN_ONLY = ("{[x:U] | P(x, x) and exists s:{U} "
             "(forall y:U (y in s <-> P(x, y)))}")


@pytest.fixture
def graph_file(tmp_path):
    schema = database_schema(G=["{U}", "{U}"])
    a, b, c = cset(atom("a")), cset(atom("b")), cset(atom("c"))
    path = tmp_path / "graph.json"
    dump_instance(instance(schema, G=[(a, b), (b, c)]), str(path))
    return str(path)


@pytest.fixture
def flat_file(tmp_path):
    schema = database_schema(P=["U", "U"])
    path = tmp_path / "flat.json"
    dump_instance(instance(schema, P=[("a", "b"), ("a", "c")]), str(path))
    return str(path)


class TestQueryCommand:
    def test_safe_query_ok(self, graph_file, capsys):
        assert main(["query", graph_file, SAFE, "--mode", "rr"]) == EXIT_OK

    def test_unsafe_query_is_a_finding(self, graph_file, capsys):
        code = main(["query", graph_file, UNSAFE, "--mode", "rr"])
        assert code == EXIT_FINDINGS

    def test_missing_instance_is_an_error(self, tmp_path, capsys):
        code = main(["query", str(tmp_path / "absent.json"), SAFE])
        assert code == EXIT_ERROR

    def test_malformed_query_is_an_error(self, graph_file, capsys):
        assert main(["query", graph_file, "{[x:U] | G(x"]) == EXIT_ERROR

    def test_corrupt_instance_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert main(["query", str(path), SAFE]) == EXIT_ERROR


class TestAnalyzeCommand:
    def test_rr_query_ok(self, graph_file, capsys):
        assert main(["analyze", graph_file, SAFE]) == EXIT_OK

    def test_non_rr_query_is_a_finding(self, graph_file, capsys):
        assert main(["analyze", graph_file, UNSAFE]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "diagnostics:" in out
        assert "RR002" in out


class TestLintCommand:
    def test_clean_query_ok(self, graph_file, capsys):
        assert main(["lint", graph_file, SAFE]) == EXIT_OK
        assert "RR005" in capsys.readouterr().out

    def test_violation_is_a_finding(self, graph_file, capsys):
        assert main(["lint", graph_file, UNSAFE]) == EXIT_FINDINGS

    def test_fail_on_warning_threshold(self, flat_file, capsys):
        assert main(["lint", flat_file, WARN_ONLY]) == EXIT_OK
        code = main(["lint", flat_file, WARN_ONLY, "--fail-on", "warning"])
        assert code == EXIT_FINDINGS

    def test_query_file_argument(self, graph_file, tmp_path, capsys):
        query_file = tmp_path / "q.repro"
        query_file.write_text(SAFE + "\n")
        assert main(["lint", graph_file, str(query_file)]) == EXIT_OK
        assert f"== {query_file}" in capsys.readouterr().out

    def test_json_output_round_trips(self, graph_file, capsys):
        assert main(["lint", graph_file, UNSAFE, "--json"]) == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["query"] == UNSAFE
        codes = [d["code"] for d in payload[0]["diagnostics"]]
        assert "RR002" in codes

    def test_explain_known_code(self, capsys):
        assert main(["lint", "--explain", "RR004"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "RR004" in out and "Definition 5.2" in out

    def test_explain_unknown_code_is_an_error(self, capsys):
        assert main(["lint", "--explain", "XXX999"]) == EXIT_ERROR

    def test_missing_arguments_is_an_error(self, capsys):
        assert main(["lint"]) == EXIT_ERROR

    def test_parse_failure_is_a_finding(self, graph_file, capsys):
        assert main(["lint", graph_file, "{[x:U] | G(x"]) == EXIT_FINDINGS
        assert "PAR001" in capsys.readouterr().out


#: Unstratified: T and S negate each other (DEP002, ERROR).
UNSTRATIFIED_DL = """\
idb T({U}, {U}).
idb S({U}, {U}).
T(x, y) :- G(x, y), not S(x, y).
S(x, y) :- G(x, y), not T(x, y).
"""

#: Stratified TC with a duplicated rule (DED003, WARNING).
DEAD_RULE_DL = """\
idb T({U}, {U}).
T(x, y) :- G(x, y).
T(x, y) :- G(x, y).
T(x, y) :- T(x, z), G(z, y).
?- T(x, y).
"""

#: Clean TC: only INFO-level findings (DEP001, ADN001/ADN002, DLG002...).
CLEAN_DL = """\
idb T({U}, {U}).
T(x, y) :- G(x, y).
T(x, y) :- T(x, z), G(z, y).
?- T(x, y).
"""


class TestLintProgramCommand:
    """Program-level diagnostics obey the same exit-code convention as
    the query-level ones: ERROR fails by default, WARNING only under
    ``--fail-on warning``, INFO never."""

    @pytest.fixture
    def dl_file(self, tmp_path):
        def write(text):
            path = tmp_path / "program.dl"
            path.write_text(text)
            return str(path)
        return write

    def test_program_error_is_a_finding(self, graph_file, dl_file, capsys):
        code = main(["lint", graph_file, dl_file(UNSTRATIFIED_DL)])
        assert code == EXIT_FINDINGS
        assert "DEP002" in capsys.readouterr().out

    def test_program_warning_respects_fail_on(self, graph_file, dl_file,
                                              capsys):
        path = dl_file(DEAD_RULE_DL)
        assert main(["lint", graph_file, path]) == EXIT_OK
        assert "DED003" in capsys.readouterr().out
        code = main(["lint", graph_file, path, "--fail-on", "warning"])
        assert code == EXIT_FINDINGS

    def test_clean_program_ok_even_on_warning_threshold(self, graph_file,
                                                        dl_file, capsys):
        code = main(["lint", graph_file, dl_file(CLEAN_DL),
                     "--fail-on", "warning"])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "DEP001" in out and "ADN002" in out

    def test_program_parse_failure_is_a_finding(self, graph_file, dl_file,
                                                capsys):
        code = main(["lint", graph_file, dl_file("idb T(U). T(x :- G.")])
        assert code == EXIT_FINDINGS
        assert "DLG003" in capsys.readouterr().out

    def test_json_carries_program_section(self, graph_file, dl_file,
                                          capsys):
        code = main(["lint", graph_file, dl_file(CLEAN_DL), "--json"])
        assert code == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        section = payload[0]["program"]
        assert section["schema"] == 1
        t_verdict = next(v for v in section["routing"]
                         if "T" in v["scc"])
        assert t_verdict["route"] == "linear-recursive"

    def test_explain_renders_analysis_tables(self, graph_file, dl_file,
                                             capsys):
        code = main(["lint", graph_file, dl_file(CLEAN_DL), "--explain"])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "-- dependency graph --" in out
        assert "-- routing (per SCC, bottom-up) --" in out
        assert "-- adorned program (query T(x, y)) --" in out


class TestBenchCommand:
    def test_unknown_suite_exits_2_and_lists_available_suites(self, capsys):
        assert main(["bench", "--suite", "nope"]) == EXIT_ERROR
        err = capsys.readouterr().err
        assert "unknown suite 'nope'" in err
        # The stderr message enumerates what IS available.
        for name in ("seminaive-smoke", "smoke", "theorems",
                     "sparse-collapse"):
            assert name in err

    def test_bad_jobs_is_an_error(self, capsys):
        code = main(["bench", "--suite", "seminaive-smoke", "--jobs", "0"])
        assert code == EXIT_ERROR
        assert "--jobs" in capsys.readouterr().err

    def test_missing_trend_file_is_an_error(self, tmp_path, capsys):
        code = main(["bench", "--trend", str(tmp_path / "absent.json")])
        assert code == EXIT_ERROR

    def test_legacy_baseline_is_an_error(self, capsys):
        code = main(["bench", "--suite", "seminaive-smoke",
                     "--sizes", "8,16", "--baseline", "BENCH_PR3.json"])
        assert code == EXIT_ERROR
        assert "--migrate" in capsys.readouterr().err

    def test_full_without_trend_is_an_error(self, capsys):
        assert main(["bench", "--full"]) == EXIT_ERROR
        assert "--trend" in capsys.readouterr().err


class TestProfileCommand:
    def test_missing_arguments_is_an_error(self, capsys):
        assert main(["profile"]) == EXIT_ERROR
        assert "--from" in capsys.readouterr().err

    def test_from_with_instance_args_is_an_error(self, graph_file, capsys):
        code = main(["profile", graph_file, SAFE, "--from", "saved.json"])
        assert code == EXIT_ERROR
        assert "--from" in capsys.readouterr().err

    def test_memory_with_from_is_an_error(self, tmp_path, capsys):
        code = main(["profile", "--from", str(tmp_path / "saved.json"),
                     "--memory"])
        assert code == EXIT_ERROR
        assert "--memory" in capsys.readouterr().err

    def test_legacy_unversioned_trace_is_an_error(self, tmp_path, capsys):
        """Pre-PR6 trace documents carry absolute perf_counter
        timestamps and no schema marker; re-export refuses them."""
        legacy = {"counters": {}, "dropped_events": 0,
                  "trace": {"name": "trace", "attrs": {}, "start": 1.0,
                            "end": 2.0, "events": [], "children": []}}
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(legacy))
        assert main(["profile", "--from", str(path)]) == EXIT_ERROR
        assert "legacy" in capsys.readouterr().err

    def test_non_trace_json_is_an_error(self, graph_file, capsys):
        # An instance file is valid JSON but not a trace document.
        assert main(["profile", "--from", graph_file]) == EXIT_ERROR

    def test_missing_from_file_is_an_error(self, tmp_path, capsys):
        code = main(["profile", "--from", str(tmp_path / "absent.json")])
        assert code == EXIT_ERROR


class TestObsCommand:
    """``repro obs``: exit-code cases for the reporting side of the run
    ledger and trace streams (PR 9)."""

    @pytest.fixture
    def ledger_file(self, graph_file, tmp_path):
        path = str(tmp_path / "obs-ledger.jsonl")
        assert main(["query", graph_file, SAFE, "--ledger", path]) == EXIT_OK
        assert main(["query", graph_file, SAFE, "--ledger", path,
                     "--strategy", "naive"]) == EXIT_OK
        return path

    def test_history_ok(self, ledger_file, capsys):
        assert main(["obs", "history", "--ledger", ledger_file]) == EXIT_OK
        out = capsys.readouterr().out
        assert "query" in out and "seminaive" in out and "naive" in out

    def test_history_json_ok(self, ledger_file, capsys):
        code = main(["obs", "history", "--ledger", ledger_file,
                     "--format", "json"])
        assert code == EXIT_OK
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 2 and records[0]["command"] == "query"

    def test_aggregate_ok(self, ledger_file, capsys):
        assert main(["obs", "aggregate", "--ledger", ledger_file]) == EXIT_OK
        assert "wall_p50" in capsys.readouterr().out

    def test_diff_by_negative_index_ok(self, ledger_file, capsys):
        assert main(["obs", "diff", "-2", "-1",
                     "--ledger", ledger_file]) == EXIT_OK
        out = capsys.readouterr().out
        assert "strategy" in out and "!=" in out

    def test_replay_ok(self, graph_file, tmp_path, capsys):
        stream = str(tmp_path / "run.stream")
        assert main(["query", graph_file, SAFE, "--stream", stream,
                     "--no-ledger"]) == EXIT_OK
        code = main(["obs", "replay", stream, "--no-times"])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "fixpoint" in out and "eval.fixpoint_stages" in out

    def test_replay_chrome_trace_ok(self, graph_file, tmp_path, capsys):
        stream = str(tmp_path / "run.stream")
        main(["query", graph_file, SAFE, "--stream", stream, "--no-ledger"])
        capsys.readouterr()  # drop the query's own stdout
        code = main(["obs", "replay", stream, "--format", "chrome-trace"])
        assert code == EXIT_OK
        document = json.loads(capsys.readouterr().out)
        assert document["traceEvents"]

    def test_missing_ledger_is_an_error(self, tmp_path, capsys):
        code = main(["obs", "history",
                     "--ledger", str(tmp_path / "absent.jsonl")])
        assert code == EXIT_ERROR
        assert "error:" in capsys.readouterr().err

    def test_empty_ledger_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["obs", "history", "--ledger", str(path)]) == EXIT_ERROR
        assert "no records" in capsys.readouterr().err

    def test_unknown_run_id_is_an_error(self, ledger_file, capsys):
        code = main(["obs", "diff", "zzzzzz", "-1",
                     "--ledger", ledger_file])
        assert code == EXIT_ERROR
        assert "unknown run id" in capsys.readouterr().err

    def test_malformed_stream_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "bad.stream"
        path.write_text("garbage not json\nmore garbage\n")
        assert main(["obs", "replay", str(path)]) == EXIT_ERROR
        assert "error:" in capsys.readouterr().err

    def test_sharded_bench_with_stream_is_an_error(self, capsys):
        code = main(["bench", "--suite", "toy", "--jobs", "2",
                     "--stream", "x.jsonl"])
        assert code == EXIT_ERROR


class TestOtherCommands:
    def test_encode_ok(self, graph_file, capsys):
        assert main(["encode", graph_file]) == EXIT_OK

    def test_density_ok(self, graph_file, capsys):
        code = main(["density", graph_file, "--i", "1", "--k", "2",
                     "--degree", "1", "--coefficient", "2"])
        assert code == EXIT_OK

    def test_unknown_command_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["no-such-command"])
        assert excinfo.value.code == 2
