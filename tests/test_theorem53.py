"""Tests for Theorem 5.3: range restriction relaxed for one dense type.

"To allow the definition of <_U in the language, the range-restriction
assumption is relaxed for some non-trivial type T, and replaced by a
density assumption for that type."  RR_T-(CALC+IFP) queries — all
variables range restricted except those of the dense type T — capture
PTIME without any order being given: the T-typed variables can hold the
postulated order, and density keeps dom(T) polynomial.
"""

import pytest

from repro.core.builder import V, exists, ifp, query, rel
from repro.core.order_formulas import pair_in, total_order_formula
from repro.core.range_restriction import (
    RangeComputationError,
    analyze_query,
    compute_ranges,
)
from repro.core.safety import evaluate_range_restricted
from repro.core.syntax import Exists, Var
from repro.objects import database_schema, instance, parse_type

ORD_TYPE = parse_type("{[U,U]}")
#: Theorem 5.3's exemption: exactly the dense non-trivial type T.
EXEMPT = frozenset({ORD_TYPE})


def _unary_instance(n: int):
    schema = database_schema(P=["U"])
    labels = "abcdefgh"[:n]
    return instance(schema, P=[(ch,) for ch in labels])


def guarded_parity_query():
    """EVEN(|D|) in RR_T form: every variable except the order variable
    (type {[U,U]}) and its pair witnesses is range restricted — the
    fixpoint's column is guarded by P, as the proof's formulas are."""
    from repro.core.order_formulas import _FreshNames

    fresh = _FreshNames("_g")
    ord_var = Var("ord", ORD_TYPE)
    x, e = V("x", "U"), V("e", "U")
    lt = lambda left, right: pair_in(ord_var, left, right, fresh)  # noqa: E731

    z1, z2, z3 = V("z1", "U"), V("z2", "U"), V("z3", "U")
    w1, w2 = V("w1", "U"), V("w2", "U")
    least = rel("P")(e) & ~exists(z1, lt(z1, e))
    succ_w1_w2 = lt(w1, w2) & ~exists(z2, lt(w1, z2) & lt(z2, w2))
    succ_w2_e = lt(w2, e) & ~exists(z3, lt(w2, z3) & lt(z3, e))
    odd = ifp("Odd", [e],
              least | (rel("P")(e)
                       & exists([w1, w2],
                                rel("Odd")(w1) & rel("P")(w1)
                                & rel("P")(w2)
                                & succ_w1_w2 & succ_w2_e)))
    m = V("m", "U")
    max_is_even = exists(
        m, rel("P")(m) & ~exists(V("z4", "U"), lt(m, V("z4", "U")))
        & ~odd(m))
    return query([x], rel("P")(x)
                 & Exists(ord_var,
                          total_order_formula(
                              ord_var, fresh,
                              guard=lambda v: rel("P")(v))
                          & max_is_even))


class TestRRTAnalysis:
    def test_rejected_without_exemption(self):
        """Plain RR analysis refuses the order variable (it has no
        range-giving occurrence) ..."""
        schema = database_schema(P=["U"])
        result = analyze_query(guarded_parity_query(), schema)
        assert not result.is_range_restricted

    def test_accepted_with_exemption(self):
        """... but the RR_T analysis, exempting the dense type, passes."""
        schema = database_schema(P=["U"])
        result = analyze_query(guarded_parity_query(), schema,
                               exempt_types=EXEMPT)
        assert result.is_range_restricted, result.violations

    def test_exempt_ranges_are_full_domains(self):
        inst = _unary_instance(2)
        ranges = compute_ranges(guarded_parity_query(), inst,
                                exempt_types=EXEMPT)
        # dom({[U,U]}, 2 atoms) has 2^4 = 16 values
        assert len(ranges["ord"]) == 16

    def test_compute_ranges_refuses_without_exemption(self):
        inst = _unary_instance(2)
        with pytest.raises(RangeComputationError):
            compute_ranges(guarded_parity_query(), inst)


class TestTheorem53Evaluation:
    """The mixed discipline evaluates correctly and polynomially in
    |dom(T)| — the PTIME capture without a given order."""

    @pytest.mark.parametrize("n,even", [(1, False), (2, True), (3, False)])
    def test_parity_via_rrt(self, n, even):
        inst = _unary_instance(n)
        report = evaluate_range_restricted(
            guarded_parity_query(), inst, exempt_types=EXEMPT)
        if even:
            assert len(report.answer) == n
        else:
            assert report.answer == frozenset()

    def test_restricted_variables_have_small_ranges(self):
        """Non-exempt variables keep database-derived (small) ranges —
        only the dense type pays its (polynomial) domain."""
        inst = _unary_instance(3)
        report = evaluate_range_restricted(
            guarded_parity_query(), inst, exempt_types=EXEMPT)
        assert report.range_sizes["x"] == 3
        assert report.range_sizes["e"] <= 3
        assert report.range_sizes["ord"] == 2 ** 9  # dom({[U,U]}, 3)
