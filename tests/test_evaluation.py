"""Tests for active-domain evaluation (Section 3; E05)."""

import pytest

from repro.core.builder import C, V, eq, exists, forall, member, proj, query, rel, subset
from repro.core.evaluation import EvalError, Evaluator, active_atoms, evaluate, evaluate_formula
from repro.objects import (
    Atom,
    atom,
    cset,
    ctuple,
    database_schema,
    instance,
    make_value,
)
from repro.objects.domains import DomainTooLarge
from repro.workloads import bipartite_query, chain_graph, cycle_graph


@pytest.fixture
def p_instance():
    schema = database_schema(P=["U", "U"])
    return instance(schema, P=[("a", "b"), ("a", "c"), ("b", "c")])


class TestAtomicFormulas:
    def test_relation_atom(self, p_instance):
        x, y = V("x", "U"), V("y", "U")
        q = query([x, y], rel("P")(x, y))
        assert len(evaluate(q, p_instance)) == 3

    def test_equality_with_constant(self, p_instance):
        x = V("x", "U")
        q = query([x], eq(x, C("a")))
        answers = evaluate(q, p_instance)
        assert answers == frozenset({ctuple(atom("a"))})

    def test_membership(self):
        schema = database_schema(R=["{U}"])
        inst = instance(schema, R=[({"a", "b"},), ({"c"},)])
        x, s = V("x", "U"), V("s", "{U}")
        q = query([x], exists(s, rel("R")(s) & member(x, s)))
        assert {str(t) for t in evaluate(q, inst)} == {"[a]", "[b]", "[c]"}

    def test_subset(self):
        schema = database_schema(R=["{U}"])
        inst = instance(schema, R=[({"a", "b"},), ({"a"},), ({"c"},)])
        s, t = V("s", "{U}"), V("t", "{U}")
        q = query([s, t], rel("R")(s) & rel("R")(t) & subset(s, t) & ~eq(s, t))
        answers = evaluate(q, inst)
        assert answers == frozenset({
            ctuple(cset(atom("a")), cset(atom("a"), atom("b")))
        })

    def test_projection(self, p_instance):
        t = V("t", "[U,U]")
        q = query([t], rel("P")(proj(t, 1), proj(t, 2)))
        assert len(evaluate(q, p_instance)) == 3


class TestConnectivesAndQuantifiers:
    def test_negation(self, p_instance):
        x, y = V("x", "U"), V("y", "U")
        q = query([x, y], ~rel("P")(x, y))
        # 9 pairs total, 3 in P
        assert len(evaluate(q, p_instance)) == 6

    def test_forall(self, p_instance):
        # sources with edges to everything P reaches from them... simpler:
        # nodes x such that every edge from x goes to c
        x, y = V("x", "U"), V("y", "U")
        q = query([x], exists(V("z", "U"), rel("P")(x, V("z", "U")))
                  & forall(y, rel("P")(x, y).implies(eq(y, C("c")))))
        assert {str(t) for t in evaluate(q, p_instance)} == {"[b]"}

    def test_iff(self, p_instance):
        x, s = V("x", "U"), V("s", "{U}")
        y = V("y", "U")
        q = query([x, s], exists(V("z", "U"), rel("P")(x, V("z", "U")))
                  & forall(y, member(y, s).iff(rel("P")(x, y))))
        answers = {str(t) for t in evaluate(q, p_instance)}
        assert answers == {"[a, {b, c}]", "[b, {c}]"}


class TestActiveDomain:
    def test_query_constants_extend_domain(self):
        """Atoms in the query count toward the active domain."""
        schema = database_schema(P=["U", "U"])
        inst = instance(schema, P=[("a", "b")])
        x = V("x", "U")
        q = query([x], eq(x, C("z")) | rel("P")(x, x))
        answers = evaluate(q, inst)
        assert answers == frozenset({ctuple(atom("z"))})

    def test_active_atoms_helper(self):
        schema = database_schema(P=["U", "U"])
        inst = instance(schema, P=[("b", "a")])
        atoms = active_atoms(inst, [make_value({"z"})])
        assert [a.label for a in atoms] == ["a", "b", "z"]

    def test_variables_range_over_full_domains(self):
        """An unconstrained set variable ranges over all 2^n subsets."""
        schema = database_schema(P=["U", "U"])
        inst = instance(schema, P=[("a", "b")])
        s = V("s", "{U}")
        x = V("x", "U")
        q = query([s], member(C("a"), s) | subset(s, s))
        # every subset satisfies s sub s: answer = all of dom({U})
        assert len(evaluate(q, inst)) == 4


class TestBipartite:
    """The Section 3 worked example."""

    def test_even_cycle_is_bipartite(self):
        inst = cycle_graph(4)
        answers = evaluate(bipartite_query(), inst)
        assert len(answers) == 4  # the graph itself

    def test_odd_cycle_is_not(self):
        inst = cycle_graph(5)
        assert evaluate(bipartite_query(), inst) == frozenset()

    def test_path_is_bipartite(self):
        inst = chain_graph(4)
        assert len(evaluate(bipartite_query(), inst)) == 3


class TestGenericity:
    """Queries must commute with isomorphisms of the atomic constants
    (the Section 2 definition of a query)."""

    def test_renaming_commutes(self, p_instance):
        x, y = V("x", "U"), V("y", "U")
        q = query([x, y], exists(V("z", "U"),
                                 rel("P")(x, V("z", "U"))
                                 & rel("P")(V("z", "U"), y)))
        mapping = {Atom("a"): Atom("u"), Atom("b"): Atom("v"),
                   Atom("c"): Atom("w")}
        renamed_instance = p_instance.rename_atoms(mapping)
        direct = evaluate(q, renamed_instance)

        def rename_row(row):
            return ctuple(*(mapping.get(item, item) for item in row.items))

        mapped = frozenset(rename_row(row) for row in evaluate(q, p_instance))
        assert direct == mapped


class TestGuards:
    def test_domain_cap(self, p_instance):
        s = V("s", "{[U,U]}")
        q = query([s], subset(s, s))
        with pytest.raises(DomainTooLarge):
            evaluate(q, p_instance, max_domain_size=100)

    def test_product_cap(self, p_instance):
        x, y, z = V("x", "U"), V("y", "U"), V("z", "U")
        q = query([x, y, z], eq(x, y) & eq(y, z))
        with pytest.raises(EvalError):
            evaluate(q, p_instance, max_product=10)

    def test_stats_collected(self, p_instance):
        evaluator = Evaluator(p_instance.schema)
        x = V("x", "U")
        evaluator.evaluate(query([x], rel("P")(x, x)), p_instance)
        assert evaluator.last_stats is not None
        assert evaluator.last_stats["atom_checks"] > 0

    def test_atom_checks_count_atoms_only(self, p_instance):
        """Regression: ``atom_checks`` once counted every formula node.
        On a pure-atom body the two counters coincide; wrapping the atom
        in connectives grows ``formula_checks`` but not ``atom_checks``."""
        x = V("x", "U")
        plain = Evaluator(p_instance.schema)
        plain.evaluate(query([x], rel("P")(x, x)), p_instance)
        assert (plain.last_stats["atom_checks"]
                == plain.last_stats["formula_checks"] > 0)

        wrapped = Evaluator(p_instance.schema)
        wrapped.evaluate(query([x], ~(~rel("P")(x, x))), p_instance)
        assert (wrapped.last_stats["atom_checks"]
                == plain.last_stats["atom_checks"])
        assert (wrapped.last_stats["formula_checks"]
                == 3 * wrapped.last_stats["atom_checks"])


class TestEvaluateFormula:
    def test_sentence(self, p_instance):
        sentence = exists(V("x", "U"), rel("P")(V("x", "U"), C("c")))
        assert evaluate_formula(sentence, p_instance)

    def test_open_formula_with_env(self, p_instance):
        from repro.objects.types import U as AtomU

        f = rel("P")(V("x", "U"), V("y", "U"))
        assert evaluate_formula(f, p_instance,
                                {"x": atom("a"), "y": atom("b")},
                                free_variable_types={"x": AtomU, "y": AtomU})
        assert not evaluate_formula(f, p_instance,
                                    {"x": atom("b"), "y": atom("a")},
                                    free_variable_types={"x": AtomU, "y": AtomU})
