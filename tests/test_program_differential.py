"""Semantic verification of the program-level analyzer.

The analyzer makes claims about *meaning*, not just structure; this
suite holds it to them:

* **Dead-rule differential** — deleting the rules the dead-code pass
  condemns (``DED001``/``DED002``/``DED003`` via
  ``ProgramAnalysis.live_program()``) never changes the query
  predicate's inflationary answer, over hundreds of random safe
  programs × random instances.
* **Lint-never-crashes fuzz** — ``lint_program`` over random valid and
  mutated-invalid programs always returns a :class:`LintReport`, never
  an uncaught exception (≥300 examples across the two fuzz tests).
* **DEP002 pin** — the unstratified witness really is
  order-dependent under inflationary evaluation: evaluating its two
  strata in the two possible orders yields different answers, while a
  stratified control program is order-forced.
* **ADN002 agreement** — on feasible programs with a bound query, the
  engine's per-strategy answers and derivation counters agree, and the
  bound-argument restriction of the answer is exactly the demand the
  adornment pass promised could be pushed.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.conftest import (
    FLAT_GRAPH_SCHEMA,
    datalog_programs,
    flat_graph_instances,
)
from repro.datalog import (
    BuiltinLiteral,
    Literal,
    Program,
    Rule,
    evaluate_inflationary,
)
from repro.lint import LintReport, analyze_program, lint_program
from repro.objects import Atom, database_schema, instance
from repro.obs import Tracer, use_tracer

SWEEP = settings(max_examples=300, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])
HALF_SWEEP = settings(max_examples=150, deadline=None,
                      suppress_health_check=[HealthCheck.too_slow])


# ---------------------------------------------------------------------------
# Dead-rule elimination is semantics-preserving
# ---------------------------------------------------------------------------

@SWEEP
@given(datalog_programs(), flat_graph_instances(),
       st.sampled_from(("T", "S")))
def test_dead_rule_elimination_preserves_the_query_answer(
        program, inst, query_predicate):
    analysis = analyze_program(program, FLAT_GRAPH_SCHEMA,
                               query=query_predicate)
    live = analysis.live_program()
    assert len(live.rules) + len(analysis.dead_rules) == len(program.rules)
    full = evaluate_inflationary(program, inst)
    pruned = evaluate_inflationary(live, inst)
    assert full[query_predicate] == pruned[query_predicate]


# ---------------------------------------------------------------------------
# Lint never crashes
# ---------------------------------------------------------------------------

def _mutate(draw, program: Program) -> Program:
    """Break a valid program in one of several representative ways.

    Mutations stay within what the ``Program`` constructor admits (its
    own invariants — declared heads, head arity — are enforced at
    construction and tested in ``test_datalog.py``); everything beyond
    that must be *lint findings*, not crashes.
    """
    mutation = draw(st.integers(0, 4))
    rules = list(program.rules)
    idb_types = dict(program.idb_types)
    if mutation == 0:
        # Unknown EDB predicate (defeats translation and DED002's
        # schema check).
        rules.append(Rule(Literal("T", ["x", "x"]),
                          [Literal("Zzz", ["x"])]))
    elif mutation == 1:
        # Unsafe rule: head variable bound by nothing positive.
        rules.append(Rule(Literal("T", ["w", "w"]),
                          [Literal("G", ["x", "y"], positive=False)]))
    elif mutation == 2:
        # Body arity mismatch against the schema's G[U, U].
        rules.append(Rule(Literal("S", ["x", "x"]),
                          [Literal("G", ["x", "x", "x"])]))
    elif mutation == 3:
        # Constant-only builtin body (untypeable variables elsewhere).
        rules.append(Rule(Literal("T", ["x", "x"]),
                          [Literal("G", ["x", "x"]),
                           BuiltinLiteral("in", ("a",), ("b",))]))
    else:
        # Mutual negation: unstratified (DEP002 territory).
        rules.append(Rule(Literal("T", ["x", "y"]),
                          [Literal("G", ["x", "y"]),
                           Literal("S", ["x", "y"], positive=False)]))
        rules.append(Rule(Literal("S", ["x", "y"]),
                          [Literal("G", ["x", "y"]),
                           Literal("T", ["x", "y"], positive=False)]))
    return Program(rules, idb_types)


@st.composite
def mutated_programs(draw):
    program = draw(datalog_programs())
    return _mutate(draw, program)


@HALF_SWEEP
@given(datalog_programs())
def test_lint_never_crashes_on_valid_programs(program):
    report = lint_program(program, FLAT_GRAPH_SCHEMA)
    assert isinstance(report, LintReport)
    assert all(d.code for d in report)


@HALF_SWEEP
@given(mutated_programs())
def test_lint_never_crashes_on_mutated_programs(program):
    report = lint_program(program, FLAT_GRAPH_SCHEMA)
    assert isinstance(report, LintReport)
    # Whatever the mutation was, no LNT001 internal error either: every
    # failure mode has a first-class diagnostic.
    assert "LNT001" not in [d.code for d in report]


# ---------------------------------------------------------------------------
# DEP002: unstratified == order-dependent under inflationary semantics
# ---------------------------------------------------------------------------

def _unstratified_witness() -> Program:
    return Program(
        [Rule(Literal("T", ["x", "y"]),
              [Literal("G", ["x", "y"]),
               Literal("S", ["x", "y"], positive=False)]),
         Rule(Literal("S", ["x", "y"]),
              [Literal("G", ["x", "y"]),
               Literal("T", ["x", "y"], positive=False)])],
        {"T": ["U", "U"], "S": ["U", "U"]},
    )


def _sequential(first: str, second: str, inst):
    """Evaluate the witness stratum-by-stratum: ``first`` to fixpoint
    with ``second`` empty, then ``second`` against the materialised
    ``first`` (as EDB facts).  This is what a stratified evaluator
    would do if someone *picked* an order for the unorderable."""

    def one(pred: str, other: str, other_rows):
        program = Program(
            [Rule(Literal(pred, ["x", "y"]),
                  [Literal("G", ["x", "y"]),
                   Literal(other, ["x", "y"], positive=False)])],
            {pred: ["U", "U"]},
        )
        base = {"G": [tuple(row) for row in inst.relation("G").tuples],
                other: [tuple(row) for row in other_rows],
                pred: []}
        # The "other" predicate is EDB here: its rows are fixed input.
        edb_schema = database_schema(G=["U", "U"], **{other: ["U", "U"]})
        sub = instance(edb_schema, G=base["G"], **{other: base[other]})
        return evaluate_inflationary(program, sub)[pred]

    first_rows = one(first, second, [])
    second_rows = one(second, first, first_rows)
    return {first: first_rows, second: second_rows}


def test_dep002_witness_is_order_dependent():
    program = _unstratified_witness()
    analysis = analyze_program(program, FLAT_GRAPH_SCHEMA, query="T")
    assert not analysis.stratified  # DEP002 fires on this program
    a, b = Atom("a"), Atom("b")
    inst = instance(FLAT_GRAPH_SCHEMA, G=[(a, b)])
    t_first = _sequential("T", "S", inst)
    s_first = _sequential("S", "T", inst)
    # T-first: T = G, S = {}.  S-first: S = G, T = {}.  The two legal
    # orders disagree on *both* predicates — no stage-independent
    # meaning exists, exactly DEP002's claim.
    assert t_first["T"] != s_first["T"]
    assert t_first["S"] != s_first["S"]
    # The engine's simultaneous inflationary semantics picks a third
    # meaning (both rules fire at stage 1) — fine, but it is a *choice*
    # of order, which is the point.
    simultaneous = evaluate_inflationary(program, inst)
    assert simultaneous["T"] == simultaneous["S"] != frozenset()


def test_stratified_control_is_order_forced():
    # Control: negation across strata.  The stratification is unique,
    # so "both orders" collapse to the one legal order and sequential
    # evaluation matches the engine.
    program = Program(
        [Rule(Literal("S", ["x", "y"]), [Literal("G", ["x", "y"])]),
         Rule(Literal("T", ["x", "y"]),
              [Literal("G", ["y", "x"]),
               Literal("S", ["x", "y"], positive=False)])],
        {"T": ["U", "U"], "S": ["U", "U"]},
    )
    analysis = analyze_program(program, FLAT_GRAPH_SCHEMA, query="T")
    assert analysis.stratified
    assert analysis.strata["T"] == analysis.strata["S"] + 1
    a, b = Atom("a"), Atom("b")
    inst = instance(FLAT_GRAPH_SCHEMA, G=[(a, b)])
    # Stratified sequential evaluation: S first (its stratum is lower).
    edb_schema = database_schema(G=["U", "U"], S=["U", "U"])
    s_rows = evaluate_inflationary(
        Program([Rule(Literal("S", ["x", "y"]), [Literal("G", ["x", "y"])])],
                {"S": ["U", "U"]}),
        inst)["S"]
    sub = instance(edb_schema,
                   G=[tuple(r) for r in inst.relation("G").tuples],
                   S=[tuple(r) for r in s_rows])
    t_rows = evaluate_inflationary(
        Program([Rule(Literal("T", ["x", "y"]),
                      [Literal("G", ["y", "x"]),
                       Literal("S", ["x", "y"], positive=False)])],
                {"T": ["U", "U"]}),
        sub)["T"]
    # The only T candidate is (b, a) and S can never contain it, so the
    # simultaneous inflationary engine and the sequential stratified
    # evaluation land on the same answer: the unique stratification
    # leaves no order to choose, hence no order to disagree about.
    simultaneous = evaluate_inflationary(program, inst)
    assert t_rows == simultaneous["T"] == frozenset({(b, a)})


# ---------------------------------------------------------------------------
# ADN002 feasibility agrees with the engine
# ---------------------------------------------------------------------------

@HALF_SWEEP
@given(datalog_programs(), flat_graph_instances())
def test_adn002_feasible_programs_agree_with_engine_counters(program, inst):
    query = Literal("T", [("a",), "y"])
    analysis = analyze_program(program, FLAT_GRAPH_SCHEMA, query=query)
    if not analysis.adornment.feasible:
        return  # ADN003: nothing is promised
    outcomes = {}
    counters = {}
    for strategy in ("naive", "seminaive"):
        tracer = Tracer()
        with use_tracer(tracer):
            result = evaluate_inflationary(program, inst,
                                           strategy=strategy)
        outcomes[strategy] = result
        counters[strategy] = dict(tracer.counters)
    # Both strategies derive the same relations, so the demanded subset
    # (first argument bound to 'a') is strategy-independent...
    bound = Atom("a")
    demanded = {
        strategy: frozenset(row for row in outcome["T"]
                            if row[0] == bound)
        for strategy, outcome in outcomes.items()
    }
    assert demanded["naive"] == demanded["seminaive"]
    # ...and the engine's derivation counters account for every row the
    # demand could touch: rows_derived covers the demanded rows, and
    # semi-naive's refire avoidance never exceeds its derivation count.
    derived = counters["seminaive"].get("datalog.rows_derived", 0)
    total_rows = sum(len(rows) for rows in outcomes["seminaive"].values())
    assert derived >= total_rows >= len(demanded["seminaive"])
    avoided = counters["seminaive"].get("datalog.refires_avoided", 0)
    assert avoided >= 0
