"""Tests for the calculus AST (Section 3)."""

import pytest

from repro.core.builder import V, eq, exists, forall, ifp, member, pfp, proj, query, rel
from repro.core.syntax import (
    And,
    Const,
    Exists,
    Fixpoint,
    FixpointTerm,
    Forall,
    Iff,
    Implies,
    Not,
    Or,
    Query,
    RelAtom,
    SyntaxError_,
    constants_of,
    relation_names_of,
)
from repro.objects import cset, atom, parse_type


class TestTerms:
    def test_const_infers_type(self):
        c = Const({"a", "b"})
        assert c.typ == parse_type("{U}")

    def test_const_explicit_type_checked(self):
        Const(set(), "{[U,U]}")  # empty set conforms
        with pytest.raises(SyntaxError_):
            Const({"a"}, "[U,U]")

    def test_var_with_and_without_type(self):
        assert V("x").typ is None
        assert V("x", "{U}").typ == parse_type("{U}")

    def test_proj_requires_tuple_var(self):
        x = V("x", "[U,{U}]")
        assert proj(x, 2).typ == parse_type("{U}")
        with pytest.raises(SyntaxError_):
            proj(V("y", "{U}"), 1)
        with pytest.raises(SyntaxError_):
            proj(x, 3)
        with pytest.raises(SyntaxError_):
            proj(x, 0)

    def test_proj_untyped_var_allowed(self):
        # type resolved later by the checker
        p = proj(V("x"), 2)
        assert p.typ is None


class TestFormulas:
    def test_connective_sugar(self):
        a = rel("R")(V("x", "U"))
        b = rel("S")(V("x", "U"))
        assert isinstance(a & b, And)
        assert isinstance(a | b, Or)
        assert isinstance(~a, Not)
        assert isinstance(a.implies(b), Implies)
        assert isinstance(a.iff(b), Iff)

    def test_auto_const_lifting(self):
        f = eq(V("x", "U"), "a")
        assert isinstance(f.right, Const)

    def test_free_variables(self):
        x, y = V("x", "U"), V("y", "U")
        f = exists(y, rel("R")(x, y))
        assert f.free_variables() == {"x"}

    def test_nested_quantifiers_builder(self):
        x, y = V("x", "U"), V("y", "U")
        f = forall([x, y], rel("R")(x, y))
        assert isinstance(f, Forall)
        assert isinstance(f.body, Forall)
        assert f.free_variables() == frozenset()

    def test_untyped_quantifier_rejected(self):
        with pytest.raises(SyntaxError_):
            Exists(V("x"), rel("R")(V("x")))

    def test_nary_connectives_need_two(self):
        with pytest.raises(SyntaxError_):
            And((rel("R")(V("x", "U")),))

    def test_walk_descends_into_fixpoints(self):
        x, y = V("x", "U"), V("y", "U")
        fix = ifp("S", [x], rel("P")(x, y))
        f = exists(y, fix(V("x", "U")))
        names = {type(sub).__name__ for sub in f.walk()}
        assert "RelAtom" in names  # the P atom inside the fixpoint body


class TestFixpoints:
    def test_kinds(self):
        x = V("x", "U")
        assert ifp("S", [x], rel("P")(x)).kind == "IFP"
        assert pfp("S", [x], rel("P")(x)).kind == "PFP"
        with pytest.raises(SyntaxError_):
            Fixpoint("XXX", "S", [("x", "U")], rel("P")(V("x", "U")))

    def test_arity_checked_at_application(self):
        x, y = V("x", "U"), V("y", "U")
        fix = ifp("S", [x, y], rel("P")(x, y))
        with pytest.raises(SyntaxError_):
            fix(x)

    def test_parameters_exclude_columns(self):
        x, p = V("x", "U"), V("p", "U")
        fix = ifp("S", [x], rel("P")(p, x) | rel("S")(x))
        assert [v.name for v in fix.parameters()] == ["p"]

    def test_term_type_unary_collapses(self):
        """Example 5.3: a unary fixpoint term has type {T}, not {[T]}."""
        fix = ifp("Q", [("y", "U")], rel("P")(V("y", "U")))
        assert FixpointTerm(fix).typ == parse_type("{U}")

    def test_term_type_binary(self):
        fix = ifp("S", [("x", "{U}"), ("y", "{U}")],
                  rel("G")(V("x", "{U}"), V("y", "{U}")))
        assert FixpointTerm(fix).typ == parse_type("{[{U},{U}]}")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SyntaxError_):
            ifp("S", [("x", "U"), ("x", "U")], rel("P")(V("x", "U")))


class TestQueries:
    def test_head_variables_must_occur(self):
        x, y = V("x", "U"), V("y", "U")
        with pytest.raises(SyntaxError_):
            query([x, y], rel("P")(x))

    def test_duplicate_head_rejected(self):
        x = V("x", "U")
        with pytest.raises(SyntaxError_):
            Query([("x", "U"), ("x", "U")], rel("P")(V("x", "U"), V("x", "U")))

    def test_head_accessors(self):
        q = query([("x", "U"), ("s", "{U}")],
                  rel("P")(V("x", "U")) & rel("R")(V("s", "{U}")))
        assert q.head_names == ("x", "s")
        assert q.head_types == (parse_type("U"), parse_type("{U}"))


class TestInspection:
    def test_constants_of(self):
        f = eq(V("x", "{U}"), Const({"a"})) & member(Const(atom("b")), V("x", "{U}"))
        consts = constants_of(f)
        assert cset(atom("a")) in consts
        assert atom("b") in consts

    def test_constants_inside_fixpoint_bodies(self):
        fix = ifp("S", [("x", "U")], eq(V("x", "U"), Const("z")))
        q = query([("x", "U")], fix(V("x", "U")))
        assert atom("z") in constants_of(q.body)

    def test_relation_names(self):
        fix = ifp("S", [("x", "U")], rel("P")(V("x", "U")) | rel("S")(V("x", "U")))
        f = fix(V("x", "U")) & rel("Q")(V("x", "U"))
        assert relation_names_of(f) == {"P", "S", "Q"}
