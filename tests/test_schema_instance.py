"""Tests for database schemas and instances (Section 2)."""

import pytest

from repro.objects import (
    DatabaseSchema,
    InstanceError,
    Relation,
    RelationSchema,
    SchemaError,
    atom,
    cset,
    database_schema,
    instance,
    parse_type,
    relation,
)
from repro.objects.values import Atom, CTuple


class TestRelationSchema:
    def test_basic(self):
        r = relation("P", "U", "{U}", "[U,{U}]")
        assert r.arity == 3
        assert r.set_height == 1
        assert r.tuple_width == 2
        assert r.is_ik_schema(1, 2)
        assert not r.is_ik_schema(0, 2)

    def test_arity_unrestricted_by_k(self):
        """Section 2: no restriction on relation arity in <i,k>-schemas."""
        r = relation("Wide", *(["U"] * 10))
        assert r.arity == 10
        assert r.is_ik_schema(0, 0)

    def test_flat(self):
        assert relation("G", "U", "U").is_flat()
        assert not relation("R", "{U}").is_flat()

    def test_rejects_empty(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ())
        with pytest.raises(SchemaError):
            RelationSchema("", ("U",))


class TestDatabaseSchema:
    def test_lookup(self):
        schema = database_schema(G=["U", "U"], R=["{U}"])
        assert schema["G"].arity == 2
        assert "R" in schema
        assert schema.get("missing") is None
        with pytest.raises(SchemaError):
            schema["missing"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseSchema([relation("R", "U"), relation("R", "U", "U")])

    def test_measures(self):
        schema = database_schema(G=["U", "U"], R=["{[U,U]}"])
        assert schema.set_height == 1
        assert schema.tuple_width == 2
        assert schema.is_ik_schema(1, 2)

    def test_column_type_set(self):
        schema = database_schema(G=["U", "U"], R=["{U}", "U"])
        assert schema.column_type_set() == {parse_type("U"), parse_type("{U}")}


class TestRelation:
    def test_typechecks_rows(self):
        r = Relation(relation("R", "U", "{U}"), [("a", {"b"})])
        assert r.cardinality == 1

    def test_rejects_arity_mismatch(self):
        with pytest.raises(InstanceError):
            Relation(relation("R", "U"), [("a", "b")])

    def test_rejects_type_mismatch(self):
        with pytest.raises(InstanceError):
            Relation(relation("R", "{U}"), [("a",)])

    def test_membership(self):
        r = Relation(relation("R", "U"), [("a",), ("b",)])
        assert ("a",) in r
        assert ("z",) not in r
        assert "junk" not in r

    def test_deduplication(self):
        r = Relation(relation("R", "U"), [("a",), ("a",)])
        assert r.cardinality == 1


class TestInstance:
    def test_cardinality_sums_relations(self):
        schema = database_schema(G=["U", "U"], R=["U"])
        inst = instance(schema, G=[("a", "b")], R=[("c",), ("d",)])
        assert inst.cardinality == 3

    def test_atoms(self):
        schema = database_schema(R=["[U,{U}]"])
        inst = instance(schema, R=[(("a", {"b", "c"}),)])
        assert inst.atoms() == frozenset({Atom("a"), Atom("b"), Atom("c")})

    def test_missing_relations_default_empty(self):
        schema = database_schema(G=["U", "U"], R=["U"])
        inst = instance(schema, G=[("a", "b")])
        assert inst.relation("R").cardinality == 0

    def test_unknown_relation_rejected(self):
        schema = database_schema(G=["U", "U"])
        with pytest.raises(SchemaError):
            instance(schema, H=[("a", "b")])

    def test_with_relation_is_functional(self):
        schema = database_schema(R=["U"])
        inst1 = instance(schema, R=[("a",)])
        inst2 = inst1.with_relation("R", [("b",)])
        assert inst1.relation("R").cardinality == 1
        assert ("a",) in inst1.relation("R")
        assert ("b",) in inst2.relation("R")
        assert ("a",) not in inst2.relation("R")

    def test_equality_and_hash(self):
        schema = database_schema(R=["U"])
        inst1 = instance(schema, R=[("a",), ("b",)])
        inst2 = instance(schema, R=[("b",), ("a",)])
        assert inst1 == inst2
        assert hash(inst1) == hash(inst2)


class TestAtomRenaming:
    def test_renaming_deep(self):
        schema = database_schema(R=["[U,{U}]"])
        inst = instance(schema, R=[(("a", {"b"}),)])
        renamed = inst.rename_atoms({Atom("a"): Atom("x"), Atom("b"): Atom("y")})
        row = next(iter(renamed.relation("R")))
        assert row == CTuple([CTuple([atom("x"), cset(atom("y"))])]).component(1) \
            or row.component(1) == CTuple([atom("x"), cset(atom("y"))])

    def test_non_injective_rejected(self):
        schema = database_schema(R=["U"])
        inst = instance(schema, R=[("a",), ("b",)])
        with pytest.raises(InstanceError):
            inst.rename_atoms({Atom("a"): Atom("z"), Atom("b"): Atom("z")})

    def test_identity_renaming(self):
        schema = database_schema(R=["{U}"])
        inst = instance(schema, R=[({"a", "b"},)])
        assert inst.rename_atoms({}) == inst
