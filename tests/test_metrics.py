"""Typed metrics: bucket boundaries, quantiles, registry kinds, JSON
round-trips, tracer integration, deep node counts, and the versioned
run-relative trace schema."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Tracer,
    metrics_from_json,
    metrics_to_json,
    trace_from_json,
    trace_to_json,
    use_tracer,
    value_node_count,
)
from repro.obs.metrics import _bucket_index, tracemalloc_peak
from repro.objects import atom, cset, ctuple


class TestCounter:
    def test_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_last_write_and_watermark(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.set(3)
        assert gauge.value == 3
        gauge.set_max(7)
        gauge.set_max(2)
        assert gauge.value == 7


class TestHistogramBuckets:
    def test_bucket_boundaries(self):
        """Bucket 0 holds v <= 1; bucket b holds (2**(b-1), 2**b].
        Exact powers of two land in the bucket they bound."""
        assert _bucket_index(0) == 0
        assert _bucket_index(1) == 0
        assert _bucket_index(2) == 1
        assert _bucket_index(3) == 2
        assert _bucket_index(4) == 2
        assert _bucket_index(5) == 3
        assert _bucket_index(8) == 3
        assert _bucket_index(9) == 4
        assert _bucket_index(1024) == 10
        assert _bucket_index(1025) == 11

    def test_float_values_bucket_consistently(self):
        assert _bucket_index(2.5) == 2  # in (2, 4]
        assert _bucket_index(0.25) == 0

    def test_record_tracks_extremes_and_counts(self):
        histogram = Histogram()
        for value in (1, 2, 3, 100):
            histogram.record(value)
        assert histogram.count == 4
        assert histogram.total == 106
        assert histogram.min == 1
        assert histogram.max == 100
        assert histogram.mean == 26.5
        assert histogram.buckets == {0: 1, 1: 1, 2: 1, 7: 1}

    def test_quantiles_are_bucket_upper_bounds_clipped_to_max(self):
        histogram = Histogram()
        for value in (2, 3, 5, 9, 100):
            histogram.record(value)
        # p50 -> 3rd of 5 values; cumulative hits at bucket 3 (ub 8)...
        assert histogram.quantile(0.5) == 8
        # ...but the top quantile clips to the observed maximum, not 128.
        assert histogram.quantile(1.0) == 100
        assert histogram.quantile(0.0) == 2  # clipped ub of first bucket
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_empty_histogram_summary(self):
        summary = Histogram().summary()
        assert summary["count"] == 0
        assert summary["p50"] == 0

    def test_summary_shape(self):
        histogram = Histogram()
        for value in range(1, 9):
            histogram.record(value)
        summary = histogram.summary()
        assert set(summary) == {"count", "total", "min", "max", "mean",
                                "p50", "p90", "p99"}
        assert summary["p50"] == 4
        assert summary["p90"] == 8


class TestRegistry:
    def test_get_or_create_and_kind_conflicts(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        assert registry.counter("a").value == 1
        with pytest.raises(TypeError):
            registry.gauge("a")
        with pytest.raises(TypeError):
            registry.histogram("a")
        assert "a" in registry and len(registry) == 1
        assert registry.get("missing") is None

    def test_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("rows").inc(41)
        registry.gauge("peak").set_max(7)
        histogram = registry.histogram("sizes")
        for value in (1, 5, 5, 300):
            histogram.record(value)
        document = metrics_to_json(registry)
        assert document["schema"] == 1
        rebuilt = metrics_from_json(json.loads(json.dumps(document)))
        assert metrics_to_json(rebuilt) == document
        assert rebuilt.histogram("sizes").quantile(0.5) == 8  # bucket ub

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            metrics_from_json({"metrics": {"x": {"kind": "meter"}}})


class TestTracerIntegration:
    def test_count_and_gauge_feed_typed_registry(self):
        tracer = Tracer()
        tracer.count("hits", 3)
        tracer.gauge("size", 9)
        tracer.gauge_max("peak", 5)
        tracer.gauge_max("peak", 2)
        assert tracer.counters == {"hits": 3, "size": 9, "peak": 5}
        assert tracer.metrics.counter("hits").value == 3
        assert tracer.metrics.gauge("peak").value == 5

    def test_observe_stays_out_of_flat_counters(self):
        tracer = Tracer()
        tracer.observe("stage_rows", 10)
        tracer.observe("stage_rows", 20)
        assert tracer.counters == {}
        assert tracer.metrics.histogram("stage_rows").count == 2

    def test_null_tracer_has_the_full_surface(self):
        from repro.obs import NULL_TRACER

        NULL_TRACER.gauge_max("x", 1)
        NULL_TRACER.observe("x", 1)
        assert not NULL_TRACER.enabled


class TestValueNodeCount:
    def test_nested_object_counts_every_node(self):
        # {a} is 2 nodes (set + atom); [{a}, b] is 1 + 2 + 1 = 4.
        assert value_node_count(atom("a")) == 1
        assert value_node_count(cset(atom("a"))) == 2
        assert value_node_count(ctuple(cset(atom("a")), atom("b"))) == 4

    def test_plain_containers_recurse(self):
        row = (cset(atom("a")), cset(atom("b"), atom("c")))
        assert value_node_count(row) == 1 + 2 + 3

    def test_opaque_values_count_as_one(self):
        assert value_node_count(42) == 1
        assert value_node_count("xyz") == 1


class TestTracemallocPeak:
    def test_measures_peak_bytes(self):
        with tracemalloc_peak() as peak:
            blob = [list(range(1000)) for _ in range(50)]
        assert peak.bytes is not None
        assert peak.bytes > 0
        del blob


class TestTraceSchema:
    def test_schema_and_relative_timestamps(self):
        tracer = Tracer()
        with tracer.span("work"):
            tracer.event("tick")
        document = trace_to_json(tracer)
        assert document["schema"] == 1
        assert document["trace"]["start"] == 0.0
        child = document["trace"]["children"][0]
        assert child["start"] >= 0.0
        assert child["events"][0]["time"] >= child["start"]
        assert "metrics" in document

    def test_round_trip_is_exact(self):
        tracer = Tracer()
        tracer.count("c", 2)
        tracer.observe("h", 17)
        with tracer.span("work"):
            pass
        document = trace_to_json(tracer)
        rebuilt = trace_from_json(json.loads(json.dumps(document)))
        assert trace_to_json(rebuilt) == document

    def test_legacy_unversioned_document_imports(self):
        """Pre-schema traces (absolute timestamps, no metrics) load; the
        re-export is normalised to the versioned relative form."""
        legacy = {
            "counters": {"ifp.stages": 3},
            "dropped_events": 0,
            "trace": {
                "name": "trace", "attrs": {},
                "start": 1234.5, "end": 1235.0,
                "events": [{"name": "e", "attrs": {}, "time": 1234.75}],
                "children": [],
            },
        }
        rebuilt = trace_from_json(legacy)
        assert rebuilt.counters == {"ifp.stages": 3}
        document = trace_to_json(rebuilt)
        assert document["schema"] == 1
        assert document["trace"]["start"] == 0.0
        assert document["trace"]["events"][0]["time"] == pytest.approx(0.25)


def _tc_program():
    from repro.datalog import Literal, Program, Rule

    return Program(
        rules=[
            Rule(Literal("T", ["x", "y"]), [Literal("G", ["x", "y"])]),
            Rule(Literal("T", ["x", "y"]),
                 [Literal("T", ["x", "z"]), Literal("G", ["z", "y"])]),
        ],
        idb_types={"T": ["U", "U"]},
    )


def _ifp_stage_sizes(span) -> list[int]:
    sizes = [e.attrs["size"] for e in span.events if e.name == "ifp.stage"]
    for child in span.children:
        sizes.extend(_ifp_stage_sizes(child))
    return sizes


class TestSpaceAccountingGolden:
    """Exact space counters for TC over chain_graph(8) — a deterministic
    workload whose stage cardinalities are computable by hand: stage i
    holds all paths of length <= i, so sizes are 7, 13, 18, 22, 25, 27,
    28, then 28 again at the no-change stage."""

    STAGE_SIZES = [7, 13, 18, 22, 25, 27, 28, 28]

    def test_chain8_stage_sizes_and_peaks(self):
        from repro.datalog import evaluate_inflationary
        from repro.workloads import chain_graph

        tracer = Tracer()
        with use_tracer(tracer):
            result = evaluate_inflationary(_tc_program(), chain_graph(8))
        assert len(result["T"]) == 28
        assert _ifp_stage_sizes(tracer.root) == self.STAGE_SIZES
        assert tracer.counters["ifp.stages"] == 8
        assert tracer.counters["space.peak_fixpoint_rows"] == 28
        assert tracer.counters["space.idb[T]"] == 28
        histogram = tracer.metrics.histogram("space.ifp.stage_rows")
        assert histogram.count == 8
        assert histogram.min == 7
        assert histogram.max == 28
        assert histogram.total == sum(self.STAGE_SIZES)

    def test_chain8_naive_agrees_on_space(self):
        from repro.datalog import evaluate_inflationary
        from repro.workloads import chain_graph

        tracer = Tracer()
        with use_tracer(tracer):
            evaluate_inflationary(_tc_program(), chain_graph(8),
                                  strategy="naive")
        assert _ifp_stage_sizes(tracer.root) == self.STAGE_SIZES
        assert tracer.counters["space.peak_fixpoint_rows"] == 28


class TestMillionEventFixpoint:
    def test_dropped_events_accounting_under_event_storm(self):
        """A million-event burst cannot exhaust memory: the default cap
        stores the first 100k and counts the rest."""
        tracer = Tracer()
        with use_tracer(tracer):
            for index in range(1_000_000):
                tracer.event("ifp.stage", stage=index)
        assert len(tracer.root.events) == tracer.max_events == 100_000
        assert tracer.dropped_events == 900_000
        document = trace_to_json(tracer)
        assert document["dropped_events"] == 900_000

    def test_small_cap_on_a_real_fixpoint(self):
        """The cap applies to engine-emitted events too; counters and
        typed metrics keep exact totals regardless."""
        from repro.datalog import evaluate_inflationary
        from repro.workloads import chain_graph

        tracer = Tracer(max_events=3)
        with use_tracer(tracer):
            evaluate_inflationary(_tc_program(), chain_graph(12))
        assert tracer.dropped_events > 0
        # 12 stages observed in the histogram even though events dropped.
        assert tracer.metrics.histogram("space.ifp.stage_rows").count == 12
        assert tracer.counters["ifp.stages"] == 12
