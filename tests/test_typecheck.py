"""Tests for type checking and <i,k>-level inference (Section 3)."""

import pytest

from repro.core.builder import V, eq, exists, ifp, member, query, rel, subset
from repro.core.typecheck import (
    TypeCheckError,
    assert_calc_ik,
    check_formula,
    check_query,
    query_level,
)
from repro.objects import database_schema, parse_type
from repro.workloads import (
    bipartite_query,
    transitive_closure_query,
    transitive_closure_term_query,
)


@pytest.fixture
def g_schema():
    return database_schema(G=["{U}", "{U}"])


class TestBasicChecking:
    def test_equality_type_mismatch(self, g_schema):
        f = eq(V("x", "U"), V("y", "{U}"))
        with pytest.raises(TypeCheckError):
            check_formula(f, g_schema)

    def test_membership_types(self, g_schema):
        good = member(V("x", "U"), V("s", "{U}"))
        check_formula(good, g_schema)
        bad = member(V("x", "{U}"), V("s", "{U}"))
        with pytest.raises(TypeCheckError):
            check_formula(bad, g_schema)

    def test_subset_needs_set_types(self, g_schema):
        with pytest.raises(TypeCheckError):
            check_formula(subset(V("x", "U"), V("y", "U")), g_schema)

    def test_relation_arity(self, g_schema):
        with pytest.raises(TypeCheckError):
            check_formula(rel("G")(V("x", "{U}")), g_schema)

    def test_relation_column_types(self, g_schema):
        with pytest.raises(TypeCheckError):
            check_formula(rel("G")(V("x", "U"), V("y", "U")), g_schema)

    def test_unknown_relation(self, g_schema):
        with pytest.raises(TypeCheckError):
            check_formula(rel("H")(V("x", "{U}"), V("y", "{U}")), g_schema)

    def test_untyped_free_variable(self, g_schema):
        with pytest.raises(TypeCheckError):
            check_formula(rel("G")(V("x"), V("y")), g_schema)

    def test_annotation_conflict(self, g_schema):
        f = exists(V("x", "{U}"), rel("G")(V("x", "U"), V("y", "{U}")))
        with pytest.raises(TypeCheckError):
            check_formula(f, g_schema)


class TestScoping:
    """Footnote 6 plus the fixpoint-column exception."""

    def test_double_quantifier_rejected(self, g_schema):
        x = V("x", "{U}")
        f = exists(x, exists(x, rel("G")(x, x)))
        with pytest.raises(TypeCheckError):
            check_formula(f, g_schema)

    def test_fixpoint_columns_may_share_outer_names(self, g_schema):
        """The paper's own Example 3.1 notation: IFP(phi(S), S)(x, y)."""
        check_query(transitive_closure_query(), g_schema)

    def test_fixpoint_column_type_conflict_rejected(self, g_schema):
        x = V("x", "{U}")
        fix = ifp("S", [("x", "U")], rel("P")(V("x", "U")))
        q = query([x], rel("G")(x, x) & eq(V("w", "{U}"), V("w", "{U}"))
                  & fix(V("z", "U")))
        schema = database_schema(G=["{U}", "{U}"], P=["U"])
        with pytest.raises(TypeCheckError):
            check_query(q, schema)

    def test_fixpoint_name_clash_with_schema(self):
        schema = database_schema(S=["U"])
        fix = ifp("S", [("x", "U")], rel("S")(V("x", "U")))
        with pytest.raises(TypeCheckError):
            check_formula(fix(V("x", "U")), schema)

    def test_nested_fixpoints_must_rename(self, g_schema):
        x = V("x", "{U}")
        inner = ifp("S", [("w", "{U}")], rel("G")(V("w", "{U}"), V("w2", "{U}")))
        outer = ifp("S", [x, V("y", "{U}")],
                    rel("G")(x, V("y", "{U}")) & inner(V("z", "{U}")))
        with pytest.raises(TypeCheckError):
            check_formula(outer(x, V("y", "{U}")), g_schema)


class TestLevels:
    """E01/E05/E06: the <i,k>-levels of the paper's queries."""

    def test_tc_pred_level(self, g_schema):
        i, k = query_level(transitive_closure_query(), g_schema)
        assert i == 1  # only {U} variables
        assert k == 0

    def test_tc_term_level(self, g_schema):
        i, k = query_level(transitive_closure_term_query(), g_schema)
        assert (i, k) == (2, 2)  # the paper's CALC_2^2 variant

    def test_bipartite_level(self):
        schema = database_schema(G=["U", "U"])
        i, k = query_level(bipartite_query(), schema)
        assert (i, k) == (1, 2)

    def test_assert_calc_ik(self, g_schema):
        assert_calc_ik(transitive_closure_query(), g_schema, 1, 2)
        with pytest.raises(TypeCheckError):
            assert_calc_ik(transitive_closure_term_query(), g_schema, 1, 2)

    def test_assert_calc_ik_schema_requirement(self):
        flat = database_schema(G=["U", "U"])
        schema_too_deep = database_schema(G=["{{U}}", "{{U}}"])
        q = transitive_closure_query("{{U}}")
        with pytest.raises(TypeCheckError):
            assert_calc_ik(q, schema_too_deep, 1, 2)
        assert_calc_ik(bipartite_query(), flat, 1, 2)

    def test_report_types_include_quantifier_types(self, g_schema):
        f = exists(V("w", "{[U,U]}"), rel("G")(V("x", "{U}"), V("y", "{U}")))
        report = check_formula(f, g_schema)
        assert parse_type("{[U,U]}") in report.types
        assert report.level == (1, 2)

    def test_report_fixpoints_collected(self, g_schema):
        report = check_query(transitive_closure_query(), g_schema)
        assert len(report.fixpoints) == 1
        assert report.fixpoints[0].name == "S"
