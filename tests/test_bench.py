"""The bench observatory: curve fitting and classification, suite
running, schema-1 baseline diffing (the flat PR 3 layout is retired;
see tests/test_bench_trend.py for its conversion), and the
``repro bench`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BenchError,
    LegacyBaselineError,
    Suite,
    SUITES,
    Tolerance,
    classify,
    convert_legacy,
    diff_against_baseline,
    document_failures,
    doubling_ratios,
    local_degrees,
    loglog_fit,
    resolve_suites,
    run_suite,
    run_suites,
    series,
)
from repro.cli import main

SIZES = [4, 8, 16, 32, 64]


class TestLogLogFit:
    def test_pure_power_law_recovers_degree(self):
        fit = loglog_fit(SIZES, [3 * n**2 for n in SIZES])
        assert fit.slope == pytest.approx(2.0)
        assert fit.r2 == pytest.approx(1.0)

    def test_cubic(self):
        fit = loglog_fit(SIZES, [n**3 for n in SIZES])
        assert fit.slope == pytest.approx(3.0)

    def test_constant_series_is_slope_zero_perfect_fit(self):
        fit = loglog_fit(SIZES, [7.0] * len(SIZES))
        assert fit.slope == pytest.approx(0.0)
        assert fit.r2 == 1.0

    def test_degenerate_inputs_raise(self):
        with pytest.raises(ValueError):
            loglog_fit([4], [1.0])
        with pytest.raises(ValueError):
            loglog_fit([4, 4], [1.0, 2.0])
        with pytest.raises(ValueError):
            loglog_fit([4, 8], [1.0])


class TestLocalDegreesAndRatios:
    def test_polynomial_series_has_constant_local_degrees(self):
        degrees = local_degrees(SIZES, [n**2 for n in SIZES])
        assert degrees == pytest.approx([2.0] * 4)
        assert doubling_ratios(SIZES, [n**2 for n in SIZES]) == \
            pytest.approx([4.0] * 4)

    def test_exponential_series_has_increasing_local_degrees(self):
        degrees = local_degrees(SIZES, [2.0**n for n in SIZES])
        assert all(b > a for a, b in zip(degrees, degrees[1:]))

    def test_non_increasing_xs_raise(self):
        with pytest.raises(ValueError):
            local_degrees([4, 4, 8], [1, 2, 3])


class TestClassify:
    def test_quadratic_is_poly_degree_two(self):
        detected = classify(SIZES, [5 * n**2 for n in SIZES])
        assert detected.kind == "poly"
        assert detected.degree == pytest.approx(2.0)

    def test_cubic_is_poly_degree_three(self):
        detected = classify(SIZES, [n**3 for n in SIZES])
        assert detected.kind == "poly"
        assert detected.degree == pytest.approx(3.0)

    def test_exponential_is_superpoly(self):
        detected = classify(SIZES, [2.0**n for n in SIZES])
        assert detected.kind == "superpoly"

    def test_noisy_quadratic_stays_poly(self):
        """The one-sided guard: multiplicative noise wobbles local
        degrees but must not promote a polynomial to superpoly."""
        noise = [1.3, 0.8, 1.1, 0.9, 1.2]
        ys = [f * n**2 for f, n in zip(noise, SIZES)]
        assert classify(SIZES, ys).kind == "poly"

    def test_two_point_series_cannot_be_superpoly(self):
        detected = classify([4, 8], [16.0, 4096.0])
        assert detected.kind == "poly"  # one segment: no trend to read


def _run_counting(n: int, strategy: str) -> dict:
    from repro.obs import get_tracer

    tracer = get_tracer()
    tracer.count("toy.rows", n * n)
    tracer.observe("toy.sizes", n)
    return {"checksum": n * n}


TOY = Suite(
    name="toy",
    title="quadratic toy workload",
    sizes=(4, 8, 16),
    strategies=("naive", "seminaive"),
    run=_run_counting,
    tolerances=(Tolerance(metric="toy.rows", max_ratio=0.0),),
)


class TestRunSuite:
    def test_document_shape_and_series(self):
        document = run_suite(TOY)
        assert document["name"] == "toy"
        assert len(document["points"]) == 6  # 3 sizes x 2 strategies
        point = document["points"][0]
        assert point["counters"]["toy.rows"] == 16
        assert point["histograms"]["toy.sizes"]["count"] == 1
        xs, ys = series(document["points"], "seminaive", "toy.rows")
        assert xs == [4, 8, 16]
        assert ys == [16.0, 64.0, 256.0]
        assert document["agreement"]["ok"]
        assert "seconds" in document["fits"]["seminaive"]

    def test_undeclared_strategy_raises(self):
        with pytest.raises(BenchError):
            run_suite(TOY, strategies=("magic",))

    def test_run_suites_skips_suites_without_the_strategy(self):
        single = Suite(name="single", title="t", sizes=(4, 8),
                       strategies=("seminaive",), run=_run_counting)
        document = run_suites([TOY, single], strategy="naive")
        assert "toy" in document["suites"]
        assert document["skipped"] == ["single"]
        assert document["schema"] == 1

    def test_tracemalloc_opt_in(self):
        document = run_suite(TOY, sizes=(4,), strategies=("seminaive",),
                             tracemalloc=True)
        assert document["points"][0]["tracemalloc_peak_bytes"] > 0


class TestResolveSuites:
    def test_groups_expand_and_dedup(self):
        suites = resolve_suites(["smoke", "seminaive-smoke"])
        names = [suite.name for suite in suites]
        assert names[0] == "seminaive-smoke"
        assert len(names) == len(set(names))

    def test_default_is_smoke(self):
        assert resolve_suites(None) == resolve_suites(["smoke"])

    def test_unknown_name_lists_candidates(self):
        with pytest.raises(KeyError, match="seminaive-smoke"):
            resolve_suites(["nope"])


class TestBaselineDiff:
    def test_modern_baseline_round_trip_is_clean(self):
        document = run_suites([TOY])
        baseline = json.loads(json.dumps(document))
        assert diff_against_baseline(document, baseline, [TOY]) == []

    def test_modern_baseline_counter_regression_is_a_breach(self):
        document = run_suites([TOY])
        baseline = json.loads(json.dumps(document))
        point = baseline["suites"]["toy"]["points"][0]
        point["counters"]["toy.rows"] -= 1
        breaches = diff_against_baseline(document, baseline, [TOY])
        assert len(breaches) == 1
        assert "toy.rows" in breaches[0]

    def test_modern_baseline_checksum_change_is_a_breach(self):
        document = run_suites([TOY])
        baseline = json.loads(json.dumps(document))
        baseline["suites"]["toy"]["points"][0]["checksum"] = 99
        breaches = diff_against_baseline(document, baseline, [TOY])
        assert any("checksum" in breach for breach in breaches)

    def test_uncovered_points_are_not_breaches(self):
        document = run_suites([TOY])
        assert diff_against_baseline(document, {"suites": {}}, [TOY]) == []

    def test_legacy_flat_baseline_is_retired(self):
        """The PR 3 flat layout no longer gates directly: the diff
        raises and points at the migration path."""
        document = run_suites([TOY])
        legacy = {"datalog": [{"n": 4, "closure_rows": 16,
                               "seminaive": {"rows": 16}}]}
        with pytest.raises(LegacyBaselineError, match="--migrate"):
            diff_against_baseline(document, legacy, [TOY])

    def test_migrated_pr3_baseline_still_gates_the_smoke_suite(self):
        """The committed BENCH_PR3.json, rewritten by convert_legacy,
        gates the smoke suite exactly as the retired reader did."""
        with open("BENCH_PR3.json", encoding="utf-8") as handle:
            baseline = convert_legacy(json.load(handle))
        suite = SUITES["seminaive-smoke"]
        document = run_suites([suite], sizes=(8, 16))
        assert diff_against_baseline(document, baseline, [suite]) == []


class TestDocumentFailures:
    def test_collects_failed_expectations_gates_and_agreement(self):
        document = {"suites": {"s": {
            "expectations": [
                {"kind": "poly", "metric": "seconds", "ok": False},
                {"kind": "bound", "metric": "rows", "ok": True},
            ],
            "gates": [{"slow": "naive", "fast": "seminaive", "ok": False}],
            "agreement": {"ok": False, "disagreements": {"4": [1, 2]}},
        }}}
        failures = document_failures(document)
        assert len(failures) == 3

    def test_clean_document_has_no_failures(self):
        assert document_failures(run_suites([TOY])) == []


class TestBenchCli:
    def test_list_exits_clean(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "smoke (group)" in out
        assert "hyper-domain" in out

    def test_unknown_suite_is_a_usage_error(self, capsys):
        assert main(["bench", "--suite", "nope"]) == 2
        assert "unknown suite" in capsys.readouterr().err

    def test_bad_sizes_is_a_usage_error(self, capsys):
        status = main(["bench", "--suite", "algebra-loop",
                       "--sizes", "x,y"])
        assert status == 2
        assert "bad --sizes" in capsys.readouterr().err

    def test_small_clean_run_writes_json(self, tmp_path, capsys):
        out_file = tmp_path / "bench.json"
        status = main(["bench", "--suite", "algebra-loop",
                       "--sizes", "8,16", "--json", str(out_file)])
        assert status == 0
        captured = capsys.readouterr()
        assert "[PASS] cross-strategy agreement" in captured.out
        document = json.loads(out_file.read_text())
        assert document["schema"] == 1
        assert "algebra-loop" in document["suites"]

    def test_failed_gate_sets_findings_exit_code(self, capsys):
        """Restricting seminaive-smoke to one strategy starves its
        naive/seminaive speedup gate -> findings exit code."""
        status = main(["bench", "--suite", "seminaive-smoke",
                       "--sizes", "8", "--strategy", "seminaive"])
        assert status == 1
        assert "FAIL:" in capsys.readouterr().err
