"""Package export hygiene (the PR 10 sweep, kept honest forever).

Every name a ``repro.*`` submodule declares in its ``__all__`` must be
re-exported by its package ``__init__`` — PR 6's consolidation left a
handful of helpers (``headline_counters``, ``AdornedRule``, the parser
source-map API, ...) reachable only by deep import, and this guard is
what keeps that from regressing.  It also checks the inverse: every
package ``__all__`` entry actually resolves.
"""

from __future__ import annotations

import importlib
import pkgutil

import pytest

PACKAGES = (
    "repro.analysis",
    "repro.core",
    "repro.datalog",
    "repro.lint",
    "repro.objects",
    "repro.obs",
    "repro.workloads",
)


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_all_resolves(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", None)
    assert exported, f"{package_name} declares no __all__"
    missing = [name for name in exported if not hasattr(package, name)]
    assert not missing, f"{package_name} exports unresolvable {missing}"
    assert len(set(exported)) == len(exported), \
        f"{package_name} has duplicate __all__ entries"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_submodule_all_reexported(package_name):
    package = importlib.import_module(package_name)
    exported = set(getattr(package, "__all__", ()))
    gaps = {}
    for module_info in pkgutil.iter_modules(package.__path__):
        submodule = importlib.import_module(
            f"{package_name}.{module_info.name}")
        names = [name for name in getattr(submodule, "__all__", ())
                 if name not in exported]
        if names:
            gaps[module_info.name] = names
    assert not gaps, (
        f"{package_name} fails to re-export submodule __all__ names: {gaps}")
