"""Tests for the textual syntax (parser <-> builder agreement)."""

import pytest

from repro.core.builder import V, exists, query, rel
from repro.core.evaluation import evaluate
from repro.core.parser import ParseError, parse_formula, parse_query, parse_term
from repro.core.syntax import (
    And,
    Const,
    Equals,
    Exists,
    FixpointPred,
    FixpointTerm,
    Forall,
    Iff,
    Implies,
    In,
    Not,
    Or,
    Proj,
    Subset,
    Var,
)
from repro.objects import atom, cset, database_schema, instance, parse_type


class TestTerms:
    def test_quoted_atom(self):
        t = parse_term("'a'")
        assert isinstance(t, Const)
        assert t.value == atom("a")

    def test_set_constant(self):
        t = parse_term("{'a', 'b'}")
        assert t.value == cset(atom("a"), atom("b"))

    def test_tuple_constant(self):
        t = parse_term("['a', {'b'}]")
        assert t.typ == parse_type("[U,{U}]")

    def test_empty_set_constant(self):
        assert parse_term("{}").value == cset()

    def test_annotated_variable(self):
        t = parse_term("x:{U}")
        assert isinstance(t, Var)
        assert t.typ == parse_type("{U}")

    def test_projection(self):
        t = parse_term("x:[U,U].2")
        assert isinstance(t, Proj)
        assert t.index == 2


class TestFormulas:
    def test_precedence_and_binds_tighter_than_or(self):
        f = parse_formula("P(x:U) and Q(x) or R(x)")
        assert isinstance(f, Or)
        assert isinstance(f.operands[0], And)

    def test_implies_right_assoc(self):
        f = parse_formula("P(x:U) -> Q(x) -> R(x)")
        assert isinstance(f, Implies)
        assert isinstance(f.consequent, Implies)

    def test_iff(self):
        f = parse_formula("P(x:U) <-> Q(x)")
        assert isinstance(f, Iff)

    def test_not(self):
        f = parse_formula("not P(x:U)")
        assert isinstance(f, Not)

    def test_quantifiers(self):
        f = parse_formula("exists x:U, y:U (P(x, y))")
        assert isinstance(f, Exists)
        assert isinstance(f.body, Exists)
        g = parse_formula("forall s:{U} (x:U in s)")
        assert isinstance(g, Forall)
        assert isinstance(g.body, In)

    def test_comparisons(self):
        assert isinstance(parse_formula("x:U = y:U"), Equals)
        assert isinstance(parse_formula("x:U in s:{U}"), In)
        assert isinstance(parse_formula("s:{U} sub t:{U}"), Subset)

    def test_parenthesised(self):
        f = parse_formula("(P(x:U) or Q(x)) and R(x)")
        assert isinstance(f, And)

    def test_variable_type_consistency(self):
        # Conflicting inline annotations are a parse-time error; purely
        # semantic type errors (x in x) are the type checker's job.
        with pytest.raises(ParseError):
            parse_formula("P(x:U) and Q(x:{U})")


class TestFixpointSyntax:
    def test_applied_fixpoint(self):
        f = parse_formula(
            "ifp[S(x:U, y:U)](G(x, y) or exists z:U (S(x,z) and G(z,y)))(x, y)"
        )
        assert isinstance(f, FixpointPred)
        assert f.fixpoint.kind == "IFP"
        assert f.fixpoint.arity == 2

    def test_pfp(self):
        f = parse_formula("pfp[S(x:U)](not S(x))(x)")
        assert f.fixpoint.kind == "PFP"

    def test_fixpoint_as_term(self):
        f = parse_formula("s:{U} = ifp[Q(y:U)](P(x:U, y) or Q(y))")
        assert isinstance(f, Equals)
        assert isinstance(f.right, FixpointTerm)


class TestQueries:
    def test_query_roundtrip_with_evaluation(self):
        schema = database_schema(P=["U", "U"])
        inst = instance(schema, P=[("a", "b"), ("b", "c")])
        parsed = parse_query("{[x:U, y:U] | exists z:U (P(x,z) and P(z,y))}")
        x, y, z = V("x", "U"), V("y", "U"), V("z", "U")
        built = query([x, y], exists(z, rel("P")(x, z) & rel("P")(z, y)))
        assert evaluate(parsed, inst) == evaluate(built, inst)

    def test_nest_query_text(self):
        schema = database_schema(P=["U", "U"])
        inst = instance(schema, P=[("a", "b"), ("a", "c")])
        q = parse_query(
            "{[x:U, s:{U}] | exists z:U (P(x,z)) "
            "and forall y:U (y in s <-> P(x, y))}"
        )
        answers = {str(t) for t in evaluate(q, inst)}
        assert answers == {"[a, {b, c}]"}

    def test_example_31_text(self):
        schema = database_schema(G=["{U}", "{U}"])
        a, b = cset(atom("a")), cset(atom("b"))
        inst = instance(schema, G=[(a, b)])
        q = parse_query(
            "{[x:{U}, y:{U}] | ifp[S(x:{U}, y:{U})]"
            "(G(x,y) or exists z:{U} (S(x,z) and G(z,y)))(x, y)}"
        )
        assert len(evaluate(q, inst)) == 1


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "",
        "P(",
        "exists x (P(x))",          # missing type
        "{[x:U] | }",
        "P(x:U) and",
        "x:U @ y:U",
        "{[x:U] | P(x)} trailing",
        "ifp[S(x:U)](S(x)",
    ])
    def test_parse_errors(self, bad):
        with pytest.raises(ParseError):
            parse_query(bad) if bad.startswith("{[") else parse_formula(bad)
