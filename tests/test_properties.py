"""Cross-cutting property-based tests (hypothesis).

Invariants that every layer must uphold together: genericity of queries,
order-invariance of the semantics, encode/decode/rank coherence.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.evaluation import evaluate
from repro.core.safety import evaluate_range_restricted
from repro.objects import (
    Atom,
    AtomOrder,
    CSet,
    compare,
    cset,
    ctuple,
    database_schema,
    decode_value,
    encode_value,
    instance,
    rank,
    sort_key,
    unrank,
)
from repro.workloads import nest_query, transitive_closure_query

from .conftest import small_types, values_of_type

ORDER = AtomOrder.from_labels("abc")


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

def flat_edge_sets():
    atoms = ["a", "b", "c", "d"]
    return st.frozensets(
        st.tuples(st.sampled_from(atoms), st.sampled_from(atoms)),
        max_size=6,
    )


def set_node_edge_sets():
    nodes = [cset(Atom(ch)) for ch in "abc"]
    return st.frozensets(
        st.tuples(st.sampled_from(nodes), st.sampled_from(nodes)),
        max_size=5,
    )


# ---------------------------------------------------------------------------
# Genericity: queries commute with atom isomorphisms
# ---------------------------------------------------------------------------

class TestGenericity:
    @given(set_node_edge_sets())
    @settings(max_examples=20, deadline=None)
    def test_tc_commutes_with_renaming(self, edges):
        schema = database_schema(G=["{U}", "{U}"])
        inst = instance(schema, G=list(edges))
        mapping = {Atom("a"): Atom("x"), Atom("b"): Atom("y"),
                   Atom("c"): Atom("z")}
        renamed = inst.rename_atoms(mapping)

        def rename_value(value):
            if isinstance(value, Atom):
                return mapping.get(value, value)
            assert isinstance(value, CSet)
            return CSet(rename_value(e) for e in value)

        direct = evaluate(transitive_closure_query(), renamed)
        via_rename = frozenset(
            ctuple(*(rename_value(item) for item in row.items))
            for row in evaluate(transitive_closure_query(), inst)
        )
        assert direct == via_rename

    @given(flat_edge_sets())
    @settings(max_examples=20, deadline=None)
    def test_nest_commutes_with_renaming(self, edges):
        schema = database_schema(P=["U", "U"])
        inst = instance(schema, P=list(edges))
        mapping = {Atom(ch): Atom(ch.upper()) for ch in "abcd"}
        renamed = inst.rename_atoms(mapping)

        def rename_value(value):
            if isinstance(value, Atom):
                return mapping.get(value, value)
            return CSet(rename_value(e) for e in value)

        direct = evaluate(nest_query(), renamed)
        via_rename = frozenset(
            ctuple(*(rename_value(item) for item in row.items))
            for row in evaluate(nest_query(), inst)
        )
        assert direct == via_rename


# ---------------------------------------------------------------------------
# Theorem 5.1 as a property: restricted == active for RR queries
# ---------------------------------------------------------------------------

class TestRestrictedEqualsActive:
    @given(flat_edge_sets())
    @settings(max_examples=15, deadline=None)
    def test_nest(self, edges):
        schema = database_schema(P=["U", "U"])
        inst = instance(schema, P=list(edges))
        restricted = evaluate_range_restricted(nest_query(), inst).answer
        active = evaluate(nest_query(), inst)
        assert restricted == active

    @given(set_node_edge_sets())
    @settings(max_examples=15, deadline=None)
    def test_transitive_closure(self, edges):
        schema = database_schema(G=["{U}", "{U}"])
        inst = instance(schema, G=list(edges))
        q = transitive_closure_query()
        restricted = evaluate_range_restricted(q, inst).answer
        active = evaluate(q, inst)
        assert restricted == active


# ---------------------------------------------------------------------------
# Encoding / ordering coherence
# ---------------------------------------------------------------------------

class TestEncodingOrderCoherence:
    @given(st.data())
    @settings(max_examples=60)
    def test_rank_respects_encoding_order_of_sets(self, data):
        """For set types, lower rank <=> smaller under <_T <=> the
        comparator agrees with sort keys (three-way coherence)."""
        typ = data.draw(small_types())
        left = data.draw(values_of_type(typ, "abc"))
        right = data.draw(values_of_type(typ, "abc"))
        by_compare = compare(left, right, ORDER)
        r_left, r_right = rank(left, typ, ORDER), rank(right, typ, ORDER)
        assert by_compare == (r_left > r_right) - (r_left < r_right)
        k_left, k_right = sort_key(left, ORDER), sort_key(right, ORDER)
        assert by_compare == (k_left > k_right) - (k_left < k_right)

    @given(st.data())
    @settings(max_examples=60)
    def test_encode_decode_unrank_coherence(self, data):
        typ = data.draw(small_types())
        value = data.draw(values_of_type(typ, "abc"))
        # encode -> decode is identity
        assert decode_value(encode_value(value, ORDER), typ, ORDER) == value
        # rank -> unrank is identity
        assert unrank(rank(value, typ, ORDER), typ, ORDER) == value

    @given(st.data())
    @settings(max_examples=40)
    def test_equal_values_same_rank_and_encoding(self, data):
        typ = data.draw(small_types())
        value = data.draw(values_of_type(typ, "abc"))
        rebuilt = unrank(rank(value, typ, ORDER), typ, ORDER)
        assert encode_value(rebuilt, ORDER) == encode_value(value, ORDER)


# ---------------------------------------------------------------------------
# Fixpoint monotonicity
# ---------------------------------------------------------------------------

class TestFixpointProperties:
    @given(set_node_edge_sets())
    @settings(max_examples=15, deadline=None)
    def test_tc_contains_edges_and_is_transitive(self, edges):
        schema = database_schema(G=["{U}", "{U}"])
        inst = instance(schema, G=list(edges))
        answer = evaluate(transitive_closure_query(), inst)
        pairs = {(row.component(1), row.component(2)) for row in answer}
        for edge in edges:
            assert (edge[0], edge[1]) in pairs
        for x, y in pairs:
            for y2, z in pairs:
                if y == y2:
                    assert (x, z) in pairs

    @given(set_node_edge_sets())
    @settings(max_examples=10, deadline=None)
    def test_tc_monotone_in_input(self, edges):
        """Adding an edge never removes closure pairs."""
        if not edges:
            return
        schema = database_schema(G=["{U}", "{U}"])
        smaller = instance(schema, G=list(edges)[:-1])
        larger = instance(schema, G=list(edges))
        q = transitive_closure_query()
        small_pairs = evaluate(q, smaller)
        large_pairs = evaluate(q, larger)
        assert small_pairs <= large_pairs
