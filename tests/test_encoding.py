"""Tests for the standard TM-tape encoding (Figure 2, Proposition 2.1;
experiments E02 and E03)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.objects.domains import domain_cardinality, materialize_domain
from repro.objects.encoding import (
    EncodingError,
    atom_bits,
    decode_instance,
    decode_value,
    domain_encoding_size,
    encode_atom,
    encode_instance,
    encode_value,
    instance_size,
    value_size,
)
from repro.objects.ordering import AtomOrder
from repro.objects.types import parse_type
from repro.objects.values import Atom, atom, cset, make_value

from .conftest import small_types, values_of_type

ORDER3 = AtomOrder.from_labels("abc")


class TestFigure2:
    """E02: the paper's exact encoding of the Figure 1 instance."""

    EXPECTED = "P[01#{00#01}#[10#{00#10}]][10#{10}#[00#{01#10}]]"

    def test_paper_figure2_verbatim(self, figure1_instance, abc_order):
        assert encode_instance(figure1_instance, abc_order) == self.EXPECTED

    def test_roundtrip(self, figure1_instance, figure1_schema, abc_order):
        encoded = encode_instance(figure1_instance, abc_order)
        decoded = decode_instance(encoded, figure1_schema, abc_order)
        assert decoded == figure1_instance

    def test_size_counts_symbols(self, figure1_instance):
        assert instance_size(figure1_instance) == len(self.EXPECTED)

    def test_different_order_different_encoding(self, figure1_instance):
        other = AtomOrder.from_labels("cba")
        assert encode_instance(figure1_instance, other) != self.EXPECTED


class TestAtomCodes:
    def test_bits(self):
        assert atom_bits(1) == 1
        assert atom_bits(2) == 1
        assert atom_bits(3) == 2
        assert atom_bits(4) == 2
        assert atom_bits(5) == 3

    def test_fixed_width(self):
        assert encode_atom(Atom("a"), ORDER3) == "00"
        assert encode_atom(Atom("b"), ORDER3) == "01"
        assert encode_atom(Atom("c"), ORDER3) == "10"

    def test_empty_universe_rejected(self):
        with pytest.raises(EncodingError):
            atom_bits(0)


class TestValueEncoding:
    def test_empty_set(self):
        assert encode_value(cset(), ORDER3) == "{}"

    def test_set_elements_in_induced_order(self):
        value = cset(atom("c"), atom("a"))
        assert encode_value(value, ORDER3) == "{00#10}"

    def test_nested(self):
        value = make_value(("b", {"a", "b"}))
        assert encode_value(value, ORDER3) == "[01#{00#01}]"

    def test_canonical(self):
        """Equal values encode identically regardless of construction order."""
        v1 = cset(atom("a"), atom("b"), atom("c"))
        v2 = cset(atom("c"), atom("b"), atom("a"))
        assert encode_value(v1, ORDER3) == encode_value(v2, ORDER3)

    @given(small_types().flatmap(lambda t: st.tuples(
        st.just(t), values_of_type(t, "abc"))))
    @settings(max_examples=80)
    def test_roundtrip_property(self, pair):
        typ, value = pair
        encoded = encode_value(value, ORDER3)
        assert decode_value(encoded, typ, ORDER3) == value

    @given(small_types().flatmap(lambda t: values_of_type(t, "abc")))
    @settings(max_examples=80)
    def test_size_matches_length(self, value):
        assert value_size(value, 3) == len(encode_value(value, ORDER3))


class TestDecodeErrors:
    def test_truncated(self):
        with pytest.raises(EncodingError):
            decode_value("{00", parse_type("{U}"), ORDER3)

    def test_trailing(self):
        with pytest.raises(EncodingError):
            decode_value("{}{}", parse_type("{U}"), ORDER3)

    def test_bad_atom_index(self):
        with pytest.raises(EncodingError):
            decode_value("11", parse_type("U"), ORDER3)  # index 3 >= 3

    def test_wrong_relation_name(self, figure1_schema):
        with pytest.raises(EncodingError):
            decode_instance("Q[...]", figure1_schema, ORDER3)


class TestDomainEncodingSize:
    """E03: the analytic ||dom(T,D)|| against brute force, and the
    Proposition 2.1 bound."""

    @pytest.mark.parametrize("text,n", [
        ("U", 1), ("U", 3), ("{U}", 2), ("{U}", 3),
        ("[U,U]", 3), ("[U,{U}]", 2), ("{[U,U]}", 2), ("{{U}}", 2),
    ])
    def test_analytic_equals_brute_force(self, text, n):
        typ = parse_type(text)
        atoms = [Atom(f"x{index}") for index in range(n)]
        values = materialize_domain(typ, atoms)
        brute = sum(value_size(v, n) for v in values)
        assert domain_encoding_size(typ, n) == brute

    @pytest.mark.parametrize("text", ["{U}", "{[U,U]}", "[{U},{U}]", "{{U}}"])
    def test_proposition_2_1_bound(self, text):
        """||dom(T,D)|| <= |dom(T,D)| * P(log|dom(T,D)|) with P(x)=8x^3+8."""
        import math

        typ = parse_type(text)
        for n in (1, 2, 3):
            cardinality = domain_cardinality(typ, n)
            size = domain_encoding_size(typ, n)
            log = max(1.0, math.log2(cardinality))
            assert size <= cardinality * (8 * log ** 3 + 8)

    def test_cardinality_vs_size_divergence(self):
        """A unary relation of cardinality 1 can have arbitrarily large
        size (the Section 2 remark)."""
        from repro.objects import database_schema, instance

        schema = database_schema(R=["{U}"])
        small = instance(schema, R=[(cset(atom("a")),)])
        big_set = cset(*(atom(f"x{index}") for index in range(20)))
        big = instance(schema, R=[(big_set,)])
        assert small.cardinality == big.cardinality == 1
        assert instance_size(big) > 4 * instance_size(small)


class TestInstanceEncoding:
    def test_missing_atom_in_order(self, figure1_instance):
        with pytest.raises(EncodingError):
            encode_instance(figure1_instance, AtomOrder.from_labels("ab"))

    def test_default_order_is_label_sorted(self, figure1_instance, abc_order):
        assert (encode_instance(figure1_instance)
                == encode_instance(figure1_instance, abc_order))

    def test_empty_relation_encodes_as_name(self):
        from repro.objects import database_schema, instance

        schema = database_schema(R=["U"], S=["U"])
        inst = instance(schema, R=[("a",)])
        encoded = encode_instance(inst)
        assert encoded.endswith("S")  # S is empty: name with no tuples
        assert decode_instance(encoded, schema,
                               AtomOrder.from_labels("a")) == inst
