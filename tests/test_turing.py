"""Tests for the Turing machine substrate."""

import pytest

from repro.machines.turing import (
    BLANK,
    Configuration,
    TMError,
    Transition,
    TuringMachine,
    binary_increment_machine,
    copy_machine,
    erase_machine,
    identity_machine,
    parity_machine,
)


class TestModel:
    def test_transition_validation(self):
        with pytest.raises(TMError):
            Transition("q", "0", "X")

    def test_configuration_sparse_tape(self):
        config = Configuration("q", 0, {0: "1", 2: "0"})
        assert config.read() == "1"
        config.head = 1
        assert config.read() == BLANK
        assert config.tape_string() == "1_0"

    def test_write_blank_clears_cell(self):
        config = Configuration("q", 0, {0: "1"})
        config.write(BLANK)
        assert config.tape == {}

    def test_missing_transition_halts(self):
        machine = TuringMachine("stuck", {}, initial_state="q")
        result = machine.run("101")
        assert result.steps == 0
        assert result.state == "q"
        assert not result.accepted

    def test_step_cap(self):
        machine = TuringMachine(
            "loop", {("q", BLANK): Transition("q", BLANK, "R")},
            initial_state="q",
        )
        with pytest.raises(TMError):
            machine.run("", max_steps=10)

    def test_states_and_alphabet(self):
        machine = parity_machine()
        assert {"even", "odd", "yes", "no"} <= machine.states
        assert {"0", "1", BLANK} <= machine.alphabet


class TestLibraryMachines:
    def test_identity(self):
        machine = identity_machine({"0", "1"})
        result = machine.run("0101")
        assert result.output == "0101"
        assert result.steps == 0
        assert result.accepted

    def test_erase(self):
        machine = erase_machine({"0", "1", "#"})
        result = machine.run("01#10")
        assert result.output == ""
        assert result.accepted

    @pytest.mark.parametrize("word,even", [
        ("", True), ("0", True), ("1", False), ("11", True),
        ("101", True), ("111", False), ("0110", True),
    ])
    def test_parity(self, word, even):
        result = parity_machine().run(word)
        assert result.accepted == even
        assert (result.output == "1") == even

    @pytest.mark.parametrize("value", [0, 1, 2, 3, 7, 12])
    def test_binary_increment(self, value):
        machine = binary_increment_machine()
        lsb_first = format(value, "b")[::-1]
        result = machine.run(lsb_first)
        incremented = int(result.output[::-1] or "0", 2)
        assert incremented == value + 1

    @pytest.mark.parametrize("word", ["ab", "a", "abc", "aabb", ""])
    def test_copy(self, word):
        machine = copy_machine({"a", "b", "c"})
        result = machine.run(word)
        expected = f"{word}:{word}" if word else ""
        assert result.output == expected
        assert result.accepted

    def test_copy_is_quadratic(self):
        """Step counts grow ~quadratically in input length."""
        machine = copy_machine({"a"})
        steps = [machine.run("a" * n).steps for n in (2, 4, 8)]
        assert steps[1] > 2 * steps[0]
        assert steps[2] > 2 * steps[1]


class TestTrace:
    def test_trace_snapshots_are_independent(self):
        machine = parity_machine()
        configs = list(machine.trace("11"))
        assert configs[0].state == "start"
        assert configs[0].tape == {0: "1", 1: "1"}  # not mutated later
        assert configs[-1].state == "yes"

    def test_trace_length_matches_steps(self):
        machine = parity_machine()
        run = machine.run("101")
        assert len(list(machine.trace("101"))) == run.steps + 1
