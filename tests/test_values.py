"""Tests for complex object values (Section 2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.objects.types import parse_type
from repro.objects.values import (
    Atom,
    CSet,
    CTuple,
    ValueError_,
    atom,
    cset,
    ctuple,
    make_value,
    value_sort_key,
)

from .conftest import small_types, values_of_type


class TestAtoms:
    def test_label_identity(self):
        assert Atom("a") == Atom("a")
        assert Atom("a") != Atom("b")
        assert Atom(1) != Atom("1")

    def test_bad_labels(self):
        with pytest.raises(ValueError_):
            Atom(True)  # bools are not labels
        with pytest.raises(ValueError_):
            Atom(3.14)  # type: ignore[arg-type]

    def test_atoms_of_atom(self):
        assert atom("a").atoms() == frozenset({Atom("a")})

    def test_infer_type(self):
        assert atom("a").infer_type() == parse_type("U")


class TestTuples:
    def test_components_one_indexed(self):
        t = ctuple(atom("a"), atom("b"))
        assert t.component(1) == atom("a")
        assert t.component(2) == atom("b")
        with pytest.raises(ValueError_):
            t.component(0)
        with pytest.raises(ValueError_):
            t.component(3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError_):
            CTuple(())

    def test_atoms_recursive(self):
        t = ctuple(atom("a"), cset(atom("b"), atom("c")))
        assert t.atoms() == frozenset({Atom("a"), Atom("b"), Atom("c")})

    def test_infer_type(self):
        t = ctuple(atom("a"), cset(atom("b")))
        assert t.infer_type() == parse_type("[U,{U}]")


class TestSets:
    def test_deduplication(self):
        s = CSet([atom("a"), atom("a"), atom("b")])
        assert len(s) == 2

    def test_empty_set_conforms_to_any_set_type(self):
        empty = cset()
        assert empty.conforms_to(parse_type("{U}"))
        assert empty.conforms_to(parse_type("{{U}}"))
        assert empty.conforms_to(parse_type("{[U,U]}"))
        assert not empty.conforms_to(parse_type("U"))

    def test_empty_set_infers_minimal_type(self):
        assert cset().infer_type() == parse_type("{U}")

    def test_heterogeneous_set_rejected_at_inference(self):
        s = CSet([atom("a"), cset(atom("b"))])
        with pytest.raises(ValueError_):
            s.infer_type()

    def test_nested_sets_are_hashable(self):
        """The awkward bit the repro band flags: sets of sets of sets."""
        inner = cset(atom("a"))
        middle = cset(inner, cset(atom("b")))
        outer = cset(middle)
        assert outer in {outer}
        assert middle in outer

    def test_set_algebra(self):
        s1 = cset(atom("a"), atom("b"))
        s2 = cset(atom("b"), atom("c"))
        assert s1.union(s2) == cset(atom("a"), atom("b"), atom("c"))
        assert s1.intersection(s2) == cset(atom("b"))
        assert s1.difference(s2) == cset(atom("a"))
        assert cset(atom("b")).issubset(s1)
        assert not s1.issubset(s2)


class TestMakeValue:
    def test_plain_python_conversion(self):
        v = make_value(("a", {"b", "c"}))
        assert v == ctuple(atom("a"), cset(atom("b"), atom("c")))

    def test_nested(self):
        v = make_value({("a", frozenset({"b"}))})
        assert v.infer_type() == parse_type("{[U,{U}]}")

    def test_passthrough(self):
        v = cset(atom("a"))
        assert make_value(v) is v

    def test_ints(self):
        assert make_value(7) == Atom(7)

    def test_rejects_unknown(self):
        with pytest.raises(ValueError_):
            make_value(3.5)
        with pytest.raises(ValueError_):
            make_value(None)


class TestSubobjects:
    def test_subobjects_preorder(self):
        v = make_value(("a", {"b"}))
        subs = list(v.subobjects())
        assert subs[0] == v
        assert atom("a") in subs
        assert cset(atom("b")) in subs
        assert atom("b") in subs


class TestProperties:
    @given(small_types().flatmap(values_of_type))
    def test_infer_type_conforms(self, value):
        try:
            inferred = value.infer_type()
        except ValueError_:
            return  # heterogeneous empty-set corner; skip
        assert value.conforms_to(inferred)

    @given(small_types().flatmap(values_of_type))
    def test_hash_consistency(self, value):
        assert hash(value) == hash(value)
        assert value == value
        assert value in {value}

    @given(small_types().flatmap(values_of_type))
    def test_sort_key_total(self, value):
        key = value_sort_key(value)
        assert isinstance(key, tuple)

    @given(st.data())
    def test_structural_equality_via_reconstruction(self, data):
        typ = data.draw(small_types())
        value = data.draw(values_of_type(typ))
        rebuilt = _rebuild(value)
        assert rebuilt == value
        assert hash(rebuilt) == hash(value)


def _rebuild(value):
    if isinstance(value, Atom):
        return Atom(value.label)
    if isinstance(value, CTuple):
        return CTuple(_rebuild(item) for item in value.items)
    if isinstance(value, CSet):
        return CSet(_rebuild(element) for element in value.elements)
    raise AssertionError
