"""The run ledger (PR 9 tentpole): append/read round-trips, identity
checksums, run resolution, aggregation, and diffing.

The central property, checked with hypothesis: any sequence of JSON-safe
records appended via :func:`append_record` reads back *verbatim* through
:func:`read_ledger` — the ledger is an exact, order-preserving journal.
Torn tails (a writer killed mid-append) are dropped silently; any other
corruption is a loud :class:`LedgerError`.
"""

from __future__ import annotations

import json
import os
import tempfile

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cli import main
from repro.obs import (
    LedgerError,
    RunRecorder,
    Tracer,
    aggregate_records,
    append_record,
    default_ledger_path,
    diff_records,
    find_record,
    instance_checksum,
    peak_rss_bytes,
    query_hash,
    read_ledger,
    rows_checksum,
    use_tracer,
)
from repro.obs.ledger import LEDGER_SCHEMA, headline_counters


# ---------------------------------------------------------------------------
# Hypothesis: append/read round-trip
# ---------------------------------------------------------------------------

_json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-2**31, max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
)

_field_names = st.text(alphabet="abcdefgh._", min_size=1, max_size=10)

_records = st.lists(
    st.dictionaries(_field_names, _json_scalars, max_size=5),
    max_size=8,
)


class TestRoundTrip:
    @given(_records)
    def test_append_then_read_is_identity(self, field_dicts):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "ledger.jsonl")
            expected = []
            for index, fields in enumerate(field_dicts):
                record = {"schema": LEDGER_SCHEMA, "id": f"run{index}"}
                record.update(fields)
                record.pop("schema", None)
                record["schema"] = LEDGER_SCHEMA  # fields cannot unseat it
                append_record(record, path)
                expected.append(record)
            if not expected:
                assert not os.path.exists(path) or \
                    read_ledger(path) == []
                return
            assert read_ledger(path) == expected

    def test_append_creates_parent_directories(self, tmp_path):
        path = str(tmp_path / "nested" / "dir" / "ledger.jsonl")
        append_record({"schema": LEDGER_SCHEMA, "id": "x"}, path)
        assert read_ledger(path) == [{"schema": LEDGER_SCHEMA, "id": "x"}]

    def test_torn_tail_is_dropped(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        append_record({"schema": LEDGER_SCHEMA, "id": "whole"}, path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": 1, "id": "to')  # killed mid-append
        records = read_ledger(path)
        assert [record["id"] for record in records] == ["whole"]

    def test_malformed_interior_line_raises(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        append_record({"schema": LEDGER_SCHEMA, "id": "a"}, path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
        append_record({"schema": LEDGER_SCHEMA, "id": "b"}, path)
        with pytest.raises(LedgerError, match="not a JSON record"):
            read_ledger(path)

    def test_unsupported_schema_raises(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        append_record({"schema": 99, "id": "future"}, path)
        with pytest.raises(LedgerError, match="unsupported ledger schema"):
            read_ledger(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(LedgerError, match="cannot read"):
            read_ledger(str(tmp_path / "absent.jsonl"))


# ---------------------------------------------------------------------------
# Identity helpers
# ---------------------------------------------------------------------------

class TestIdentity:
    def test_query_hash_normalises_whitespace(self):
        assert query_hash("{[x:U] |  P(x)}") == \
            query_hash("  {[x:U]\n|\tP(x)}  ")
        assert query_hash("{[x:U] | P(x)}") != query_hash("{[x:U] | Q(x)}")
        assert len(query_hash("q")) == 12

    @given(st.lists(st.integers(), max_size=10))
    def test_rows_checksum_is_order_independent(self, rows):
        import random

        shuffled = list(rows)
        random.Random(7).shuffle(shuffled)
        assert rows_checksum(rows) == rows_checksum(shuffled)

    def test_instance_checksum_ignores_row_order(self, flat_graph_schema):
        from repro.objects import instance

        forward = instance(flat_graph_schema,
                           G=[("a", "b"), ("b", "c"), ("c", "a")])
        backward = instance(flat_graph_schema,
                            G=[("c", "a"), ("b", "c"), ("a", "b")])
        assert instance_checksum(forward) == instance_checksum(backward)
        different = instance(flat_graph_schema, G=[("a", "b")])
        assert instance_checksum(forward) != instance_checksum(different)

    def test_peak_rss_is_plausible_on_posix(self):
        rss = peak_rss_bytes()
        if rss is not None:  # non-POSIX returns None
            assert rss > 4 << 20  # a CPython process is at least a few MB

    def test_headline_counters_filters_machine_noise(self):
        counters = {"eval.steps": 3, "space.peak": 9, "ifp.stages": 2,
                    "toy.rows": 5, "wall.noise": 1}
        assert headline_counters(counters) == {
            "eval.steps": 3, "space.peak": 9, "ifp.stages": 2}


# ---------------------------------------------------------------------------
# RunRecorder
# ---------------------------------------------------------------------------

class TestRunRecorder:
    def test_record_structure_and_counter_capture(self):
        recorder = RunRecorder("query")
        recorder.note(query_hash="abc123", rows=7, skipped=None)
        tracer = Tracer()
        with use_tracer(tracer):
            tracer.count("eval.steps", 4)
            tracer.count("ifp.stages", 3)
            tracer.count("machine.noise", 1)
        recorder.attach_tracer(tracer)
        record = recorder.finish("ok")
        assert record["schema"] == LEDGER_SCHEMA
        assert record["command"] == "query"
        assert record["outcome"] == "ok"
        assert record["query_hash"] == "abc123"
        assert record["rows"] == 7
        assert "skipped" not in record  # None fields are dropped
        assert record["wall_seconds"] >= 0
        assert record["counters"] == {"eval.steps": 4, "ifp.stages": 3}
        assert record["stages"] == 3  # ifp.stages + pfp.stages
        assert len(record["id"]) == 12

    def test_noted_outcome_overrides_finish(self):
        recorder = RunRecorder("query")
        recorder.note(outcome="timeout")
        assert recorder.finish("ok")["outcome"] == "timeout"

    def test_unknown_outcome_degrades_to_error(self):
        assert RunRecorder("query").finish("exploded")["outcome"] == "error"

    def test_error_text_is_recorded(self):
        record = RunRecorder("bench").finish("error", error="boom")
        assert record["error"] == "boom"


# ---------------------------------------------------------------------------
# Resolution, aggregation, diffing
# ---------------------------------------------------------------------------

def _record(id_, **fields):
    record = {"schema": LEDGER_SCHEMA, "id": id_, "command": "query",
              "outcome": "ok", "wall_seconds": 0.002}
    record.update(fields)
    return record


class TestFindRecord:
    RECORDS = [_record("aaa111"), _record("aab222"), _record("ccc333")]

    def test_unique_prefix_resolves(self):
        assert find_record(self.RECORDS, "ccc")["id"] == "ccc333"

    def test_negative_index_resolves(self):
        assert find_record(self.RECORDS, "-1")["id"] == "ccc333"
        assert find_record(self.RECORDS, "-3")["id"] == "aaa111"

    def test_ambiguous_prefix_raises(self):
        with pytest.raises(LedgerError, match="ambiguous"):
            find_record(self.RECORDS, "aa")

    def test_unknown_id_raises(self):
        with pytest.raises(LedgerError, match="unknown run id"):
            find_record(self.RECORDS, "zzz")

    def test_out_of_range_index_raises(self):
        with pytest.raises(LedgerError, match="out of range"):
            find_record(self.RECORDS, "-4")


class TestAggregate:
    def test_groups_by_query_hash_with_drift(self):
        records = [
            _record("a1", query_hash="qh1", wall_seconds=0.010,
                    counters={"eval.steps": 5}),
            _record("a2", query_hash="qh1", wall_seconds=0.030,
                    counters={"eval.steps": 8}),
            _record("b1", command="bench", outcome="error"),
        ]
        aggregates = {entry["key"]: entry
                      for entry in aggregate_records(records)}
        group = aggregates["qh1"]
        assert group["runs"] == 2
        assert group["outcomes"] == {"ok": 2}
        assert group["drift"] == {"eval.steps": {"min": 5, "max": 8}}
        assert group["wall_ms"]["count"] == 2
        assert group["wall_ms"]["p50"] >= 1
        # Hashless records group under their command.
        assert aggregates["bench"]["outcomes"] == {"error": 1}

    def test_stable_counters_do_not_drift(self):
        records = [_record(f"r{i}", query_hash="qh",
                           counters={"eval.steps": 5}) for i in range(3)]
        assert aggregate_records(records)[0]["drift"] == {}


class TestDiff:
    def test_field_and_counter_deltas(self):
        a = _record("aaa", query_hash="qh", strategy="naive",
                    wall_seconds=0.1, rss_peak_bytes=1000,
                    counters={"eval.steps": 10, "only.a": 1})
        b = _record("bbb", query_hash="qh", strategy="seminaive",
                    wall_seconds=0.05, rss_peak_bytes=1500,
                    counters={"eval.steps": 4})
        diff = diff_records(a, b)
        assert diff["a"]["id"] == "aaa" and diff["b"]["id"] == "bbb"
        assert diff["fields"]["query_hash"]["equal"] is True
        assert diff["fields"]["strategy"]["equal"] is False
        assert diff["counters"]["eval.steps"]["delta"] == -6
        assert diff["counters"]["only.a"]["b"] is None
        assert diff["wall_seconds"]["ratio"] == 0.5
        assert diff["rss_peak_bytes"]["delta"] == 500


# ---------------------------------------------------------------------------
# CLI integration: every ledgered command leaves a well-formed record
# ---------------------------------------------------------------------------

SAFE = ("{[x:{U}, y:{U}] | ifp[S(x:{U}, y:{U})]"
        "(G(x,y) or exists z:{U} (S(x,z) and G(z,y)))(x, y)}")


@pytest.fixture
def graph_file(tmp_path):
    from repro.objects import atom, cset, database_schema, dump_instance, \
        instance

    schema = database_schema(G=["{U}", "{U}"])
    a, b, c = cset(atom("a")), cset(atom("b")), cset(atom("c"))
    path = tmp_path / "graph.json"
    dump_instance(instance(schema, G=[(a, b), (b, c)]), str(path))
    return str(path)


class TestCliLedger:
    def test_query_appends_full_record(self, graph_file, tmp_path, capsys):
        ledger = str(tmp_path / "cli-ledger.jsonl")
        assert main(["query", graph_file, SAFE, "--ledger", ledger]) == 0
        records = read_ledger(ledger)
        assert len(records) == 1
        record = records[0]
        assert record["command"] == "query"
        assert record["outcome"] == "ok"
        assert record["query_hash"] == query_hash(SAFE)
        assert record["mode"] == "rr"
        assert record["strategy"] == "seminaive"
        assert record["rows"] == 3
        assert record["stages"] == 3
        assert record["counters"]["ifp.stages"] == 3
        assert "instance_checksum" in record

    def test_lint_records_complexity_verdict(self, graph_file, tmp_path,
                                             capsys):
        ledger = str(tmp_path / "cli-ledger.jsonl")
        main(["lint", graph_file, SAFE, "--ledger", ledger])
        record = read_ledger(ledger)[-1]
        assert record["command"] == "lint"
        assert record["verdict"] == "PTIME"
        assert record["query_hash"] == query_hash(SAFE)

    def test_lint_records_rejection_verdict(self, graph_file, tmp_path,
                                            capsys):
        ledger = str(tmp_path / "cli-ledger.jsonl")
        main(["lint", graph_file, "{[x:{U}] | not G(x, x)}",
              "--ledger", ledger])
        record = read_ledger(ledger)[-1]
        # A pure-CALC query's Theorem 5.1 bound would have been LOGSPACE.
        assert record["verdict"] == "no-LOGSPACE-guarantee"

    def test_no_ledger_suppresses_the_record(self, graph_file, tmp_path,
                                             capsys):
        ledger = str(tmp_path / "cli-ledger.jsonl")
        main(["query", graph_file, SAFE, "--ledger", ledger, "--no-ledger"])
        assert not os.path.exists(ledger)

    def test_empty_repro_ledger_env_disables(self, graph_file, monkeypatch,
                                             capsys):
        monkeypatch.setenv("REPRO_LEDGER", "")
        assert default_ledger_path() is None
        assert main(["query", graph_file, SAFE]) == 0  # and writes nowhere

    def test_divergence_outcome(self, graph_file, tmp_path, capsys):
        ledger = str(tmp_path / "cli-ledger.jsonl")
        code = main(["query", graph_file,
                     "{[x:{U}] | pfp[S(x:{U})](not S(x))(x)}",
                     "--ledger", ledger, "--mode", "active"])
        assert code == 2
        record = read_ledger(ledger)[-1]
        assert record["outcome"] == "divergence"
        assert "cycle" in record["error"]

    def test_parse_error_outcome(self, graph_file, tmp_path, capsys):
        ledger = str(tmp_path / "cli-ledger.jsonl")
        assert main(["query", graph_file, "{[x:U] | G(x",
                     "--ledger", ledger]) == 2
        record = read_ledger(ledger)[-1]
        assert record["outcome"] == "error"
        assert record["error"]

    def test_records_accumulate_as_json_lines(self, graph_file, tmp_path,
                                              capsys):
        ledger = str(tmp_path / "cli-ledger.jsonl")
        for _ in range(3):
            main(["query", graph_file, SAFE, "--ledger", ledger])
        with open(ledger, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 3
        assert all(json.loads(line)["schema"] == LEDGER_SCHEMA
                   for line in lines)
