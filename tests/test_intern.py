"""The interning layer: round-trip, injectivity, order compatibility.

Three properties pin :mod:`repro.objects.intern`:

* intern → unintern is the identity over random nested values;
* interning is injective — equal ids iff structurally equal values —
  and id-level set/tuple structure mirrors the object structure;
* on a fixed instance, :meth:`ValueStore.from_instance` assigns ids
  compatible with the induced order ``<_T`` of Definition 4.2 within
  each declared-type group (atoms get exactly their AtomOrder ranks),
  and the assignment is stable across JSON re-parses.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from .conftest import small_types, values_of_type
from repro.objects import (
    Atom,
    AtomOrder,
    ColumnTable,
    CSet,
    CTuple,
    InternError,
    ValueStore,
    database_schema,
    instance,
    instance_from_json,
    instance_to_json,
    intern_instance,
    less_than,
    parse_type,
    type_depth,
)


def nested_values():
    return small_types().flatmap(values_of_type)


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(value=nested_values())
    def test_intern_unintern_identity(self, value):
        store = ValueStore()
        vid = store.intern(value)
        assert store.value(vid) == value

    @settings(max_examples=100, deadline=None)
    @given(values=st.lists(nested_values(), min_size=1, max_size=6))
    def test_row_round_trip(self, values):
        store = ValueStore()
        ids = store.intern_row(values)
        assert store.unintern_row(ids) == tuple(values)

    @settings(max_examples=100, deadline=None)
    @given(value=nested_values())
    def test_reconstruction_without_cache(self, value):
        """``value()`` must rebuild from structural keys alone: a second
        store fed only the ids' keys (via intern_set/intern_tuple paths)
        still decodes."""
        store = ValueStore()
        vid = store.intern(value)
        # Drop the cached objects; force key-based reconstruction.
        store._values = [None] * len(store._values)
        assert store.value(vid) == value


class TestInjectivity:
    @settings(max_examples=150, deadline=None)
    @given(left=nested_values(), right=nested_values())
    def test_equal_ids_iff_equal_values(self, left, right):
        store = ValueStore()
        assert (store.intern(left) == store.intern(right)) == (left == right)

    @settings(max_examples=100, deadline=None)
    @given(value=nested_values())
    def test_idempotent(self, value):
        store = ValueStore()
        assert store.intern(value) == store.intern(value)
        assert value in store

    @settings(max_examples=100, deadline=None)
    @given(value=nested_values())
    def test_id_structure_mirrors_value_structure(self, value):
        store = ValueStore()
        vid = store.intern(value)
        if isinstance(value, Atom):
            assert store.kind(vid) == "atom"
            assert store.tuple_items(vid) is None
            assert store.set_members(vid) is None
        elif isinstance(value, CTuple):
            assert store.kind(vid) == "tuple"
            items = store.tuple_items(vid)
            assert items is not None
            assert store.unintern_row(items) == value.items
            assert store.intern_tuple(items) == vid
        else:
            assert store.kind(vid) == "set"
            members = store.set_members(vid)
            assert members is not None
            assert frozenset(store.value(m) for m in members) == value.elements
            assert store.intern_set(members) == vid

    def test_unknown_ids_rejected(self):
        store = ValueStore()
        with pytest.raises(InternError):
            store.value(0)
        with pytest.raises(InternError):
            store.intern_set([7])
        with pytest.raises(InternError):
            store.intern("not a value")


NESTED_SCHEMA = database_schema(P=["U", "{U}", "[U,{U}]"])

NESTED_INSTANCE = instance(
    NESTED_SCHEMA,
    P=[("b", {"a", "b"}, ("c", {"a", "c"})),
       ("c", {"c"}, ("a", {"b", "c"})),
       ("a", set(), ("b", {"a"}))],
)


class TestOrderCompatibility:
    def test_atom_ids_are_atom_order_ranks(self):
        store = ValueStore.from_instance(NESTED_INSTANCE)
        order = AtomOrder.sorted_by_label(NESTED_INSTANCE.atoms())
        for rank_, atom_ in enumerate(order.atoms):
            assert store.intern(atom_) == rank_

    def test_ids_follow_induced_order_within_declared_type(self):
        """Within each declared-type group of the fixed instance, id
        order equals the induced order ``<_T`` (module-docstring
        guarantee of ``intern.py``)."""
        store = ValueStore.from_instance(NESTED_INSTANCE)
        order = AtomOrder.sorted_by_label(NESTED_INSTANCE.atoms())
        by_type = {
            parse_type("U"): [row.component(1)
                              for row in NESTED_INSTANCE.relation("P")],
            parse_type("{U}"): [row.component(2)
                                for row in NESTED_INSTANCE.relation("P")],
            parse_type("[U,{U}]"): [row.component(3)
                                    for row in NESTED_INSTANCE.relation("P")],
        }
        for typ, values in by_type.items():
            distinct = set(values)
            for left in distinct:
                for right in distinct:
                    if less_than(left, right, order):
                        assert store.intern(left) < store.intern(right), \
                            (typ, left, right)

    def test_subobjects_precede_their_containers(self):
        store = ValueStore.from_instance(NESTED_INSTANCE)
        for row in NESTED_INSTANCE.relation("P"):
            for value in row.items:
                vid = store.intern(value)
                for sub in value.subobjects():
                    assert store.intern(sub) <= vid

    def test_ids_stable_across_reparse(self):
        reparsed = instance_from_json(
            json.loads(json.dumps(instance_to_json(NESTED_INSTANCE))))
        first = ValueStore.from_instance(NESTED_INSTANCE)
        second = ValueStore.from_instance(reparsed)
        for row in NESTED_INSTANCE.relation("P"):
            for value in row.items:
                assert first.intern(value) == second.intern(value)

    def test_type_depth(self):
        assert type_depth(parse_type("U")) == 1
        assert type_depth(parse_type("{U}")) == 2
        assert type_depth(parse_type("[U,{U}]")) == 3
        assert type_depth(parse_type("{[U,{{U}}]}")) == 5


class TestColumnTable:
    def test_round_trip_and_layout(self):
        store, tables = intern_instance(NESTED_INSTANCE)
        table = tables["P"]
        assert isinstance(table, ColumnTable)
        assert table.arity == 3
        assert len(table) == 3
        decoded = {store.unintern_row(row) for row in table}
        assert decoded == {tuple(row.items)
                           for row in NESTED_INSTANCE.relation("P")}
        assert table.to_frozenset() == {table.row(i)
                                        for i in range(len(table))}

    def test_rows_sorted_for_determinism(self):
        _, tables = intern_instance(NESTED_INSTANCE)
        rows = list(tables["P"])
        assert rows == sorted(rows)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(InternError):
            ColumnTable([(1, 2), (3,)])

    def test_heterogeneous_conformant_sets_intern(self):
        """Declared-type collection must not trip over sets whose
        elements only share the declared element type (infer_type would
        reject them)."""
        schema = database_schema(R=["{{{U}}}"])
        empty = CSet([])
        nested = CSet([CSet([Atom("a")])])
        inst = instance(schema, R=[(CSet([empty, nested]),)])
        store, _ = intern_instance(inst)
        assert store.value(store.intern(CSet([empty, nested]))) \
            == CSet([empty, nested])
