"""Tests for IFP and PFP (Definition 3.1, Example 3.1; E06)."""

import pytest

from repro.core.builder import V, eq, exists, ifp, pfp, query, rel
from repro.core.evaluation import evaluate
from repro.core.fixpoint import (
    FixpointError,
    PFPDivergenceError,
    ifp_delta_stages,
    ifp_stages,
    iterate_ifp,
    iterate_ifp_delta,
    iterate_pfp,
    pfp_stages,
)
from repro.objects import atom, cset, ctuple, database_schema, instance
from repro.workloads import (
    cyclic_nodes_query,
    pfp_transitive_closure_query,
    set_chain_graph,
    transitive_closure_query,
    transitive_closure_term_query,
)


class TestEngines:
    """The generic iteration engines on hand-rolled stage functions."""

    def test_ifp_accumulates(self):
        # stage: numbers reachable by +1 from 0, up to 5
        def stage(current):
            if not current:
                return frozenset({(0,)})
            return frozenset((n + 1,) for (n,) in current if n < 5)

        result = iterate_ifp(stage)
        assert result == frozenset((n,) for n in range(6))

    def test_ifp_stage_count(self):
        def stage(current):
            if not current:
                return frozenset({(0,)})
            return frozenset((n + 1,) for (n,) in current if n < 3)

        stages = list(ifp_stages(stage))
        assert stages[0] == frozenset()
        assert len(stages) == 5  # {}, {0}, {0,1}, {0,1,2}, {0,1,2,3}

    def test_pfp_reaches_fixed_point(self):
        def stage(current):
            return frozenset({(1,), (2,)})

        assert iterate_pfp(stage) == frozenset({(1,), (2,)})

    def test_pfp_cycle_detected(self):
        def stage(current):
            return frozenset({(1,)}) if (1,) not in current else frozenset({(2,)})

        with pytest.raises(PFPDivergenceError) as excinfo:
            iterate_pfp(stage)
        assert excinfo.value.period == 2

    def test_pfp_stages_yields_path(self):
        def stage(current):
            if len(current) >= 2:
                return current
            return current | frozenset({(len(current),)})

        stages = list(pfp_stages(stage))
        assert [len(s) for s in stages] == [0, 1, 2]

    def test_max_stage_guard(self):
        def stage(current):
            return frozenset({(len(current),)}) | current

        with pytest.raises(FixpointError):
            iterate_ifp(stage, max_stages=5)


class TestDeltaEngine:
    """``iterate_ifp_delta`` must replay ``iterate_ifp`` exactly, with
    the stage function fed only the fresh rows of the previous stage."""

    @staticmethod
    def _counter_stage():
        def stage(current):
            if not current:
                return frozenset({(0,)})
            return frozenset((n + 1,) for (n,) in current if n < 5)

        return stage

    @staticmethod
    def _counter_delta_stage(deltas):
        def stage(current, delta):
            deltas.append(delta)
            if not current:
                return frozenset({(0,)})
            return frozenset((n + 1,) for (n,) in delta if n < 5)

        return stage

    def test_same_result_as_naive(self):
        deltas = []
        naive = iterate_ifp(self._counter_stage())
        delta = iterate_ifp_delta(self._counter_delta_stage(deltas))
        assert naive == delta == frozenset((n,) for n in range(6))

    def test_delta_is_previous_fresh_rows(self):
        deltas = []
        iterate_ifp_delta(self._counter_delta_stage(deltas))
        # First call sees an empty delta; afterwards exactly the one
        # fresh row of the previous stage.
        assert deltas[0] == frozenset()
        assert deltas[1:] == [frozenset({(n,)}) for n in range(6)]

    def test_stage_sequences_match_naive(self):
        naive = list(ifp_stages(self._counter_stage()))
        deltas = []
        delta = list(ifp_delta_stages(self._counter_delta_stage(deltas)))
        assert naive == delta

    def test_max_stage_guard(self):
        def stage(current, delta):
            return frozenset({(len(current),)}) | current

        with pytest.raises(FixpointError):
            iterate_ifp_delta(stage, max_stages=5)

    def test_stage_counter_matches_naive(self):
        from repro.obs import Tracer, use_tracer

        tracer_naive, tracer_delta = Tracer(), Tracer()
        with use_tracer(tracer_naive):
            iterate_ifp(self._counter_stage())
        with use_tracer(tracer_delta):
            deltas = []
            iterate_ifp_delta(self._counter_delta_stage(deltas))
        assert (tracer_naive.counters["ifp.stages"]
                == tracer_delta.counters["ifp.stages"])


@pytest.fixture
def graph_instance(set_graph_schema):
    a, b, c, d = (cset(atom(ch)) for ch in "abcd")
    return instance(set_graph_schema, G=[(a, b), (b, c), (c, d), (d, b)])


class TestExample31:
    """Example 3.1's three queries over a graph with {U}-typed nodes."""

    def test_transitive_closure(self, graph_instance):
        answers = evaluate(transitive_closure_query(), graph_instance)
        # a reaches b,c,d; b,c,d reach each of b,c,d
        assert len(answers) == 3 + 9

    def test_transitive_closure_as_term(self, set_graph_schema):
        """The CALC_2^2 variant computes the same closure, packaged as
        one set object (needs range-restricted evaluation to be
        feasible — checked in test_range_restriction; here we use a tiny
        2-atom instance so active-domain evaluation can enumerate)."""
        a, b = cset(atom("a")), cset(atom("b"))
        inst = instance(set_graph_schema, G=[(a, b)])
        answers = evaluate(transitive_closure_term_query(), inst,
                           max_domain_size=10 ** 6)
        assert len(answers) == 1
        (closure_value,) = next(iter(answers)).items
        assert closure_value == cset(ctuple(a, b))

    def test_cyclic_nodes(self, graph_instance):
        answers = evaluate(cyclic_nodes_query(), graph_instance)
        labels = {str(row.component(1)) for row in answers}
        assert labels == {"{b}", "{c}", "{d}"}

    def test_acyclic_graph_has_no_cyclic_nodes(self, set_graph_schema):
        inst = set_chain_graph(3)
        assert evaluate(cyclic_nodes_query(), inst) == frozenset()


class TestPFPQueries:
    def test_pfp_transitive_closure(self, graph_instance):
        ifp_answers = evaluate(transitive_closure_query(), graph_instance)
        pfp_answers = evaluate(pfp_transitive_closure_query(), graph_instance)
        assert ifp_answers == pfp_answers

    def test_pfp_divergence_surfaces(self, set_graph_schema):
        a, b = cset(atom("a")), cset(atom("b"))
        inst = instance(set_graph_schema, G=[(a, b)])
        x = V("x", "{U}")
        flip = pfp("S", [x], ~rel("S")(x))
        q = query([x], flip(x))
        with pytest.raises(PFPDivergenceError):
            evaluate(q, inst)


class TestFixpointSemantics:
    def test_inflationary_union(self, set_graph_schema):
        """IFP keeps earlier stages even if the formula stops producing
        them (J_i = phi(J_{i-1}) UNION J_{i-1})."""
        a, b = cset(atom("a")), cset(atom("b"))
        inst = instance(set_graph_schema, G=[(a, b)])
        x = V("x", "{U}")
        # phi(S): x = {a} if S empty... encode via: G(x, y) first stage only
        fix_ifp = ifp("S", [x],
                      (~exists(V("w", "{U}"), rel("S")(V("w", "{U}"))))
                      & exists(V("y", "{U}"), rel("G")(x, V("y", "{U}"))))
        q = query([x], fix_ifp(x))
        answers = evaluate(q, inst)
        # stage 1 adds {a}; stage 2's phi is empty but {a} persists
        assert answers == frozenset({ctuple(a)})

        fix_pfp = pfp("S", [x],
                      (~exists(V("w", "{U}"), rel("S")(V("w", "{U}"))))
                      & exists(V("y", "{U}"), rel("G")(x, V("y", "{U}"))))
        with pytest.raises(PFPDivergenceError):
            evaluate(query([x], fix_pfp(x)), inst)  # oscillates {}/{a}

    def test_parameterised_fixpoint(self):
        """Fixpoints with outer parameters (Example 5.3's shape)."""
        schema = database_schema(P=["U", "U"])
        inst = instance(schema, P=[("a", "b"), ("a", "c"), ("b", "c")])
        x, s = V("x", "U"), V("s", "{U}")
        fix = ifp("Q", [("yv", "U")], rel("P")(x, V("yv")) | rel("Q")(V("yv")))
        q = query([x, s], exists(V("z", "U"), rel("P")(x, V("z", "U")))
                  & eq(s, fix.as_term()))
        answers = {str(t) for t in evaluate(q, inst)}
        assert answers == {"[a, {b, c}]", "[b, {c}]"}

    def test_nested_fixpoints(self, set_graph_schema):
        """A fixpoint whose body applies another (renamed-apart) fixpoint:
        reachability in the square graph G^2."""
        a, b, c = (cset(atom(ch)) for ch in "abc")
        inst = instance(set_graph_schema, G=[(a, b), (b, c)])
        u, v, w = V("u", "{U}"), V("v", "{U}"), V("w", "{U}")
        square = ifp("Sq", [u, v],
                     exists(w, rel("G")(u, w) & rel("G")(w, v)))
        x, y, z = V("x", "{U}"), V("y", "{U}"), V("z", "{U}")
        reach = ifp("R2", [x, y],
                    square(x, y) | exists(z, rel("R2")(x, z) & square(z, y)))
        answers = evaluate(query([x, y], reach(x, y)), inst)
        assert answers == frozenset({ctuple(a, c)})


class TestMaxStagesBound:
    """``max_stages=n`` permits at most n stage-function applications
    (regression: the old ``count > max_stages`` check allowed n+1)."""

    @staticmethod
    def _growing_stage(calls):
        def stage(current):
            calls.append(len(current))
            return frozenset({(len(current),)}) | current

        return stage

    def test_ifp_applies_stage_exactly_max_times(self):
        calls = []
        with pytest.raises(FixpointError):
            iterate_ifp(self._growing_stage(calls), max_stages=3)
        assert len(calls) == 3

    def test_pfp_applies_stage_exactly_max_times(self):
        calls = []
        with pytest.raises(FixpointError):
            iterate_pfp(self._growing_stage(calls), max_stages=3)
        assert len(calls) == 3

    def test_ifp_converging_at_the_bound_succeeds(self):
        # Converges on the 3rd application (the stage that returns no
        # new rows); max_stages=3 must accept it.
        def stage(current):
            if len(current) >= 2:
                return current
            return current | frozenset({(len(current),)})

        result = iterate_ifp(stage, max_stages=3)
        assert len(result) == 2

    def test_pfp_stages_takes_optional_bound(self):
        calls = []
        generator = pfp_stages(self._growing_stage(calls), max_stages=3)
        with pytest.raises(FixpointError):
            list(generator)
        assert len(calls) == 3

    def test_pfp_stages_unbounded_by_default(self):
        def stage(current):
            if len(current) >= 50:
                return current
            return current | frozenset({(len(current),)})

        stages = list(pfp_stages(stage))
        assert len(stages) == 51  # J_0 .. J_50
