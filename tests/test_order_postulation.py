"""Tests for order postulation (the heart of Theorem 4.1's proof).

On non-flat inputs, no order needs to be *given*: an order on the atoms
is just an object of the non-trivial type ``{[U,U]}``, so a query can
existentially quantify one — ``exists ord (order(ord) and psi(ord))`` —
and the answer is generic because it holds for some order iff it holds
for all (when psi is order-invariant).  This is why the PTIME capture
needs no order assumption, only density.
"""

import pytest

from repro.core.builder import V, exists, ifp, query, rel
from repro.core.evaluation import Evaluator, evaluate
from repro.core.order_formulas import pair_in, total_order_formula
from repro.core.syntax import Exists, Var
from repro.objects import (
    AtomOrder,
    database_schema,
    instance,
    materialize_domain,
    parse_type,
)

ORD_TYPE = parse_type("{[U,U]}")


def _unary_instance(n: int):
    schema = database_schema(P=["U"])
    labels = "abcdefgh"[:n]
    return instance(schema, P=[(ch,) for ch in labels])


class TestTotalOrderFormula:
    def test_counts_exactly_the_orders(self):
        """Among the 2^(n^2) candidate values, exactly n! satisfy
        order(ord)."""
        inst = _unary_instance(3)
        ord_var = Var("ord", ORD_TYPE)
        phi = total_order_formula(ord_var)
        evaluator = Evaluator(inst.schema, max_domain_size=10 ** 6)
        atom_order = AtomOrder.sorted_by_label(inst.atoms())
        matches = [
            candidate
            for candidate in materialize_domain(ORD_TYPE, atom_order.atoms)
            if evaluator.evaluate_formula(
                phi, inst, {"ord": candidate},
                free_variable_types={"ord": ORD_TYPE})
        ]
        assert len(matches) == 6  # 3!

    def test_rejects_partial_and_cyclic(self):
        from repro.objects import cset, ctuple, atom

        inst = _unary_instance(2)
        ord_var = Var("ord", ORD_TYPE)
        phi = total_order_formula(ord_var)
        evaluator = Evaluator(inst.schema, max_domain_size=10 ** 6)

        def holds(value):
            return evaluator.evaluate_formula(
                phi, inst, {"ord": value},
                free_variable_types={"ord": ORD_TYPE})

        a, b = atom("a"), atom("b")
        assert holds(cset(ctuple(a, b)))          # a < b
        assert not holds(cset())                   # not total
        assert not holds(cset(ctuple(a, a)))       # reflexive
        assert not holds(cset(ctuple(a, b), ctuple(b, a)))  # cyclic

    def test_pair_in_helper(self):
        from repro.objects import cset, ctuple, atom
        from repro.objects.types import U as AtomU

        inst = _unary_instance(2)
        container = Var("c", ORD_TYPE)
        x, y = Var("x", AtomU), Var("y", AtomU)
        phi = pair_in(container, x, y)
        evaluator = Evaluator(inst.schema, max_domain_size=10 ** 6)
        value = cset(ctuple(atom("a"), atom("b")))
        env = {"c": value, "x": atom("a"), "y": atom("b")}
        assert evaluator.evaluate_formula(
            phi, inst, env,
            free_variable_types={"c": ORD_TYPE, "x": AtomU, "y": AtomU})
        env["x"], env["y"] = env["y"], env["x"]
        assert not evaluator.evaluate_formula(
            phi, inst, env,
            free_variable_types={"c": ORD_TYPE, "x": AtomU, "y": AtomU})


def parity_query():
    """EVEN(|D|): a generic query inexpressible without order in the
    plain calculus, expressed by *postulating* one.

    ``{x | P(x) and exists ord ( order(ord) and the ord-maximum element
    is at an even position )}`` — positions via an IFP marking every
    other element, exactly the Theorem 4.1 mechanism in miniature.
    """
    from repro.core.order_formulas import _FreshNames

    fresh = _FreshNames("_f")
    ord_var = Var("ord", ORD_TYPE)
    x = V("x", "U")
    e = V("e", "U")
    lt = lambda left, right: pair_in(ord_var, left, right, fresh)  # noqa: E731

    z1, z2, z3 = V("z1", "U"), V("z2", "U"), V("z3", "U")
    w1, w2 = V("w1", "U"), V("w2", "U")
    least = ~exists(z1, lt(z1, e))
    succ_w1_w2 = lt(w1, w2) & ~exists(z2, lt(w1, z2) & lt(z2, w2))
    succ_w2_e = lt(w2, e) & ~exists(z3, lt(w2, z3) & lt(z3, e))
    odd = ifp("Odd", [e],
              least | exists([w1, w2],
                             rel("Odd")(w1) & succ_w1_w2 & succ_w2_e))
    m = V("m", "U")
    max_is_odd_even = exists(
        m, ~exists(V("z4", "U"), lt(m, V("z4", "U"))) & ~odd(m))
    return query([x], rel("P")(x)
                 & Exists(ord_var,
                          total_order_formula(ord_var) & max_is_odd_even))


class TestParityViaPostulatedOrder:
    # n = 4 sweeps 2^16 order candidates (~20s); covered by the slow
    # marker-free smaller sizes, which already include both parities.
    @pytest.mark.parametrize("n,even", [(1, False), (2, True), (3, False)])
    def test_parity(self, n, even):
        inst = _unary_instance(n)
        answer = evaluate(parity_query(), inst, max_domain_size=10 ** 6)
        if even:
            assert len(answer) == n  # all atoms returned
        else:
            assert answer == frozenset()

    def test_genericity_of_the_postulation(self):
        """The answer is independent of which total order witnesses the
        existential — checked by renaming atoms."""
        from repro.objects import Atom

        inst = _unary_instance(2)
        renamed = inst.rename_atoms({Atom("a"): Atom("z")})
        direct = evaluate(parity_query(), renamed, max_domain_size=10 ** 6)
        assert len(direct) == 2
