"""Live trace streaming, replay, and the stall watchdog (PR 9).

Three properties anchor this file:

* **Replay equivalence** — a streamed run replays to the same span
  tree, events, and counters the in-memory tracer held (chain TC
  through the real range-restricted evaluator, not a toy).
* **Durability** — a SIGKILLed process leaves a replayable stream
  recovering >= 90% of the spans it opened (the acceptance bar), with
  unclosed spans flushed ``aborted``.
* **Stall detection** — a heartbeat-free window fires the watchdog's
  counter dump; with ``abort=True`` a :class:`StallError` lands in the
  watched thread, unwinding a genuinely wedged stage function.
"""

from __future__ import annotations

import io
import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.core.safety import evaluate_range_restricted
from repro.core.fixpoint import iterate_ifp
from repro.core.parser import parse_query
from repro.obs import (
    StallError,
    StreamError,
    StreamWriter,
    Tracer,
    Watchdog,
    read_segments,
    replay_stream,
    use_tracer,
)
from repro.workloads import singleton_chain

TC = ("{[x:{U}, y:{U}] | ifp[S(x:{U}, y:{U})]"
      "(G(x,y) or exists z:{U} (S(x,z) and G(z,y)))(x, y)}")

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK,
                                reason="SIGKILL test needs fork")


def _run_tc(n: int, sink) -> Tracer:
    """Chain TC over ``n`` nodes with streaming on; returns the closed
    live tracer."""
    inst = singleton_chain("".join(chr(97 + i % 26) for i in range(n)))
    query = parse_query(TC)
    tracer = Tracer(stream=sink)
    with use_tracer(tracer):
        evaluate_range_restricted(query, inst)
    tracer.close()
    return tracer


def _shape(span) -> list:
    """A span tree as JSON-safe nested lists (timing excluded)."""
    return json.loads(json.dumps(
        [span.name, span.status, span.attrs,
         [[event.name, event.attrs] for event in span.events],
         [_shape(child) for child in span.children]],
        default=repr))


class TestReplayEquivalence:
    def test_chain_tc_replays_identically(self):
        sink = io.StringIO()
        live = _run_tc(8, sink)
        replayed = replay_stream(sink.getvalue().splitlines())
        assert _shape(replayed.root) == _shape(live.root)
        assert replayed.counters == live.counters
        assert replayed.root.status == "ok"

    def test_replayed_counters_feed_metrics_gauges(self):
        sink = io.StringIO()
        live = _run_tc(6, sink)
        replayed = replay_stream(sink.getvalue().splitlines())
        name = "eval.fixpoint_stages"
        assert replayed.metrics.gauge(name).value == live.counters[name]

    def test_torn_stream_replays_with_aborted_spans(self):
        sink = io.StringIO()
        _run_tc(8, sink)
        lines = sink.getvalue().splitlines()
        # Cut mid-run *and* tear the final line, as a SIGKILL would.
        torn = lines[: len(lines) // 2] + [lines[len(lines) // 2][:10]]
        replayed = replay_stream(torn)
        assert replayed.root.status == "aborted"
        opened = sum(1 for line in torn[:-1]
                     if json.loads(line).get("t") == "open")
        assert sum(1 for _ in replayed.root.walk()) == opened
        # Every span is closed (flushed), never dangling.
        assert all(span.end is not None for span in replayed.root.walk())

    def test_multiple_segments_select_by_index(self):
        sink = io.StringIO()
        _run_tc(4, sink)
        _run_tc(6, sink)
        lines = sink.getvalue().splitlines()
        assert len(read_segments(lines)) == 2
        first = replay_stream(lines, segment=0)
        last = replay_stream(lines, segment=-1)
        assert first.counters["eval.fixpoint_stages"] < \
            last.counters["eval.fixpoint_stages"]
        with pytest.raises(StreamError, match="segment"):
            replay_stream(lines, segment=5)

    def test_garbage_interior_line_raises(self):
        sink = io.StringIO()
        _run_tc(4, sink)
        lines = sink.getvalue().splitlines()
        lines.insert(2, "garbage not json")
        with pytest.raises(StreamError, match="not JSON"):
            replay_stream(lines)

    def test_content_before_begin_raises(self):
        with pytest.raises(StreamError, match="begin"):
            replay_stream(['{"t": "open", "id": 0, "name": "x", "ts": 0}'])


class TestStreamWriter:
    def test_sink_death_disables_streaming_silently(self):
        class DyingSink:
            def __init__(self):
                self.writes = 0

            def write(self, text):
                self.writes += 1
                if self.writes > 3:
                    raise OSError("broken pipe")

            def flush(self):
                pass

        sink = DyingSink()
        tracer = Tracer(stream=sink)
        with tracer.span("a"):
            for _ in range(10):
                tracer.event("tick")
        tracer.close()  # no exception: telemetry loss, not run failure
        assert tracer.stream._dead is True

    def test_counter_snapshots_are_deltas(self):
        sink = io.StringIO()
        tracer = Tracer(stream=sink)
        with tracer.span("a"):
            tracer.count("x", 5)
            tracer.event("e1")
            tracer.event("e2")  # x unchanged: no second snapshot
            tracer.count("x", 2)
            tracer.event("e3")
        tracer.close()
        snapshots = [json.loads(line)["values"]
                     for line in sink.getvalue().splitlines()
                     if json.loads(line)["t"] == "counters"]
        assert snapshots == [{"x": 5}, {"x": 7}]

    def test_wrapping_is_idempotent(self):
        sink = io.StringIO()
        writer = StreamWriter(sink)
        tracer = Tracer(stream=writer)
        assert tracer.stream is writer


class TestSigkillRecovery:
    @needs_fork
    def test_killed_run_recovers_90_percent_of_spans(self, tmp_path):
        path = str(tmp_path / "victim.stream")
        context = multiprocessing.get_context("fork")
        process = context.Process(target=_victim, args=(path,), daemon=True)
        process.start()
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            if os.path.exists(path) and _line_count(path) >= 40:
                break
            time.sleep(0.01)
        else:
            pytest.fail("victim never produced 40 stream lines")
        os.kill(process.pid, signal.SIGKILL)
        process.join(5.0)
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        opened = 0
        for line in lines:
            try:
                opened += json.loads(line).get("t") == "open"
            except json.JSONDecodeError:
                pass  # the torn tail
        replayed = replay_stream(lines)
        recovered = sum(1 for _ in replayed.root.walk())
        assert opened > 0
        assert recovered >= 0.9 * opened  # the acceptance bar
        assert replayed.root.status == "aborted"
        assert replayed.counters  # per-stage snapshots survived the kill


def _line_count(path: str) -> int:
    with open(path, encoding="utf-8") as handle:
        return sum(1 for _ in handle)


def _victim(path: str) -> None:
    """Child process: stream chain-TC evaluations until SIGKILLed."""
    inst = singleton_chain("abcdefgh")
    query = parse_query(TC)
    with open(path, "w", encoding="utf-8") as sink:
        tracer = Tracer(stream=sink)
        with use_tracer(tracer):
            while True:
                with tracer.span("tc_round"):
                    evaluate_range_restricted(query, inst)
                time.sleep(0.002)


class TestWatchdog:
    def test_fires_and_dumps_counters_on_stall(self):
        tracer = Tracer()
        tracer.count("eval.steps", 41)
        out = io.StringIO()
        with Watchdog(tracer, 0.05, out=out, poll_seconds=0.01) as dog:
            time.sleep(0.3)
        assert dog.fired is True
        dump = out.getvalue()
        assert "stall: no heartbeat" in dump
        assert "eval.steps" in dump and "41" in dump

    def test_heartbeats_keep_it_quiet(self):
        tracer = Tracer()
        out = io.StringIO()
        with Watchdog(tracer, 0.2, out=out, poll_seconds=0.01) as dog:
            deadline = time.monotonic() + 0.5
            while time.monotonic() < deadline:
                tracer.heartbeat()
                time.sleep(0.01)
        assert dog.fired is False
        assert out.getvalue() == ""

    def test_dumps_once_per_stall_not_per_poll(self):
        tracer = Tracer()
        out = io.StringIO()
        with Watchdog(tracer, 0.05, out=out, poll_seconds=0.01):
            time.sleep(0.4)
        assert out.getvalue().count("stall: no heartbeat") == 1

    def test_abort_raises_stall_error_in_watched_thread(self):
        tracer = Tracer()
        out = io.StringIO()
        with pytest.raises(StallError):
            with Watchdog(tracer, 0.05, abort=True, out=out,
                          poll_seconds=0.01):
                deadline = time.monotonic() + 10.0
                # Busy-wait: async exceptions land at bytecode
                # boundaries, so the loop must stay in Python.
                while time.monotonic() < deadline:
                    pass
        assert "aborting" in out.getvalue()

    def test_abort_unwinds_a_wedged_fixpoint_stage(self):
        """The satellite case: a stage function that stops making
        progress (and stops beating) is cut short cleanly."""
        tracer = Tracer()

        def wedged_stage(current):
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                pass
            return frozenset()

        with pytest.raises(StallError):
            with Watchdog(tracer, 0.05, abort=True, out=io.StringIO(),
                          poll_seconds=0.01):
                iterate_ifp(wedged_stage, tracer=tracer)

    def test_nonpositive_stall_window_rejected(self):
        with pytest.raises(ValueError, match="stall_seconds"):
            Watchdog(Tracer(), 0.0)


class TestHeartbeatPlumbing:
    def test_heartbeat_updates_last_beat(self):
        tracer = Tracer()
        tracer.last_beat = 0.0
        tracer.heartbeat()
        assert tracer.last_beat > 0.0

    def test_null_tracer_has_heartbeat(self):
        from repro.obs import NULL_TRACER

        NULL_TRACER.heartbeat()  # no-op, no error

    def test_fixpoint_stages_beat_without_spans_or_events(self):
        """The engines' per-stage ``heartbeat()`` calls keep the beat
        fresh even when the event cap has been reached."""
        tracer = Tracer(max_events=0)

        def one_shot_stage(current):
            tracer.last_beat = 0.0  # cleared mid-stage...
            return frozenset()

        iterate_ifp(one_shot_stage, tracer=tracer)
        assert tracer.last_beat > 0.0  # ...and refreshed by the loop
