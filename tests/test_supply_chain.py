"""The supply-chain workload pack (PR 10): golden conformance + generator
properties.

Two halves:

* **Golden conformance** — the committed ``supply_chain_golden.json``
  pins, at seed 0 and scales 1 and 4, the instance checksum, every
  relation's row count, and every inventory question's answer (row
  count, order-independent checksum, fixpoint stage count for the
  recursive questions).  All three engine lanes — naive, semi-naive,
  interned — are held to those numbers.  The expensive scale-4 CALC
  sweep carries ``-m slow`` (the deep-differential CI lane).
* **Generator properties** (hypothesis) — same seed ⇒ byte-identical
  instance checksum, documented row formulas, BOM acyclicity with the
  exact ``102 * scale`` closure size, schema conformance of the nested
  values, and Assembly/BOM consistency.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.obs import instance_checksum
from repro.objects import Atom, CSet
from repro.workloads import (
    GOLDEN_SCALES,
    GOLDEN_SEED,
    QUESTIONS,
    SCALES,
    answer_question,
    bom_closure_rows,
    load_golden,
    question_by_name,
    question_verdict,
    supply_chain_instance,
    supply_chain_rows,
)

GOLDEN = load_golden()

#: lane id -> (engine strategy, intern flag)
LANES = {
    "naive": ("naive", False),
    "seminaive": ("seminaive", False),
    "interned": ("seminaive", True),
}

PROPS = settings(max_examples=25, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


@pytest.fixture(scope="module")
def instances():
    """The pinned golden instances, built once per module."""
    return {scale: supply_chain_instance(scale, GOLDEN_SEED)
            for scale in GOLDEN_SCALES}


def _assert_question_matches(question, inst, expected, strategy, intern):
    answer = answer_question(question, inst, strategy=strategy,
                             intern=intern)
    assert len(answer.rows) == expected["rows"], question.name
    assert answer.checksum == expected["checksum"], question.name
    if question.recursive:
        assert answer.stages == expected["stages"], question.name
    assert question.verdict == expected["verdict"], question.name


# ---------------------------------------------------------------------------
# Golden conformance
# ---------------------------------------------------------------------------

class TestGoldenDocument:
    def test_metadata(self):
        assert GOLDEN["seed"] == GOLDEN_SEED
        assert sorted(int(s) for s in GOLDEN["scales"]) == \
            sorted(GOLDEN_SCALES)

    def test_covers_whole_inventory(self):
        names = {question.name for question in QUESTIONS}
        for payload in GOLDEN["scales"].values():
            assert set(payload["questions"]) == names

    @pytest.mark.parametrize("scale", GOLDEN_SCALES)
    def test_instance_checksum_and_row_formulas(self, instances, scale):
        inst = instances[scale]
        payload = GOLDEN["scales"][str(scale)]
        assert instance_checksum(inst) == payload["instance_checksum"]
        formulas = supply_chain_rows(scale)
        for name in inst.schema.relation_names:
            assert len(inst.relation(name)) == formulas[name]
            assert payload["relation_rows"][name] == formulas[name]


class TestGoldenConformance:
    @pytest.mark.parametrize("lane", sorted(LANES))
    def test_scale1_every_question(self, instances, lane):
        strategy, intern = LANES[lane]
        payload = GOLDEN["scales"]["1"]
        for question in QUESTIONS:
            _assert_question_matches(
                question, instances[1], payload["questions"][question.name],
                strategy, intern)

    @pytest.mark.parametrize("lane", sorted(LANES))
    def test_scale4_datalog_questions(self, instances, lane):
        strategy, intern = LANES[lane]
        payload = GOLDEN["scales"]["4"]
        for question in QUESTIONS:
            if question.kind != "datalog":
                continue
            _assert_question_matches(
                question, instances[4], payload["questions"][question.name],
                strategy, intern)

    @pytest.mark.slow
    @pytest.mark.parametrize("lane", sorted(LANES))
    def test_scale4_calc_questions(self, instances, lane):
        strategy, intern = LANES[lane]
        payload = GOLDEN["scales"]["4"]
        for question in QUESTIONS:
            if question.kind != "calc":
                continue
            _assert_question_matches(
                question, instances[4], payload["questions"][question.name],
                strategy, intern)

    def test_bom_stage_pins_are_scale_independent(self):
        """The depth-3 ternary blocks pin the BOM fixpoints' stage
        counts regardless of scale — the committed goldens agree."""
        for name in ("bom-closure", "bom-explosion-apex",
                     "where-used-leaf", "calc-bom-tc"):
            stages = {payload["questions"][name]["stages"]
                      for payload in GOLDEN["scales"].values()}
            assert len(stages) == 1, name


class TestInventoryShape:
    def test_size_and_uniqueness(self):
        assert len(QUESTIONS) == 30
        assert len({question.name for question in QUESTIONS}) == 30

    def test_covers_both_kinds_and_all_colors(self):
        kinds = {question.kind for question in QUESTIONS}
        verdicts = {question.verdict for question in QUESTIONS}
        assert kinds == {"datalog", "calc"}
        assert verdicts == {"GREEN", "YELLOW", "RED"}
        yellows = [q for q in QUESTIONS if q.verdict == "YELLOW"]
        assert len(yellows) >= 8  # recursion is the point of the pack

    def test_verdicts_stable_under_analysis(self):
        """Every declared color equals what the lint/adornment passes
        derive from the question's program or query — the routing
        verdicts are facts, not annotations."""
        for question in QUESTIONS:
            assert question_verdict(question) == question.verdict, \
                question.name

    def test_question_by_name_rejects_unknown(self):
        with pytest.raises(KeyError):
            question_by_name("nonexistent-question")


# ---------------------------------------------------------------------------
# Generator properties
# ---------------------------------------------------------------------------

class TestGeneratorProperties:
    @PROPS
    @given(scale=st.integers(1, 3), seed=st.integers(0, 50))
    def test_same_seed_means_identical_checksum(self, scale, seed):
        first = instance_checksum(supply_chain_instance(scale, seed))
        second = instance_checksum(supply_chain_instance(scale, seed))
        assert first == second

    def test_distinct_seeds_distinct_instances(self):
        checksums = {instance_checksum(supply_chain_instance(1, seed))
                     for seed in range(8)}
        assert len(checksums) == 8

    @PROPS
    @given(scale=st.integers(1, 3), seed=st.integers(0, 50))
    def test_row_formulas(self, scale, seed):
        inst = supply_chain_instance(scale, seed)
        formulas = supply_chain_rows(scale)
        for name in inst.schema.relation_names:
            assert len(inst.relation(name)) == formulas[name], name

    @PROPS
    @given(scale=st.integers(1, 2), seed=st.integers(0, 50))
    def test_bom_acyclic_with_exact_closure(self, scale, seed):
        inst = supply_chain_instance(scale, seed)
        edges = {(parent, child)
                 for parent, child in inst.relation("BOM")}
        closure = set(edges)
        while True:
            grown = closure | {(a, d) for a, b in closure
                               for c, d in edges if b == c}
            if grown == closure:
                break
            closure = grown
        assert not any(a == b for a, b in closure)  # acyclic
        assert len(closure) == bom_closure_rows(scale)

    @PROPS
    @given(scale=st.integers(1, 2), seed=st.integers(0, 50))
    def test_nested_values_conform(self, scale, seed):
        inst = supply_chain_instance(scale, seed)
        parts = {part for part, _ in inst.relation("Part")}
        for part, certs in inst.relation("PartCert"):
            assert isinstance(certs, CSet)
            assert all(isinstance(cert, Atom) for cert in certs)
        bom_children: dict[Atom, set[Atom]] = {}
        for parent, child in inst.relation("BOM"):
            bom_children.setdefault(parent, set()).add(child)
        for assembly, components in inst.relation("Assembly"):
            assert isinstance(components, CSet)
            assert set(components) == bom_children[assembly]
            assert set(components) <= parts

    @pytest.mark.parametrize("scale", [1, 2, 5])
    def test_named_entities_exist_at_every_scale(self, scale):
        inst = supply_chain_instance(scale)
        assert Atom("p000000") in {p for p, _ in inst.relation("Part")}
        assert Atom("s0000") in {s for s, _ in inst.relation("Supplier")}
        assert Atom("c00000") in {c for c, _ in inst.relation("Customer")}

    def test_scale_bounds_enforced(self):
        with pytest.raises(ValueError):
            supply_chain_instance(0)
        with pytest.raises(ValueError):
            supply_chain_instance(2000)
        with pytest.raises(ValueError):
            supply_chain_rows(0)

    def test_named_scales(self):
        assert SCALES["tiny"] == 1
        total = sum(supply_chain_rows(SCALES["large"]).values())
        assert total >= 100_000  # the ROADMAP item 4 floor
