"""Tests for the type algebra (Section 2; experiment E01)."""

import pytest
from hypothesis import given

from repro.objects.types import (
    AtomType,
    SetType,
    TupleType,
    TypeError_,
    U,
    as_type,
    format_type_tree,
    parse_type,
    set_of,
    tuple_of,
)

from .conftest import small_types


class TestConstruction:
    def test_atom_singleton_equality(self):
        assert AtomType() == U
        assert hash(AtomType()) == hash(U)

    def test_set_type(self):
        t = set_of(U)
        assert isinstance(t, SetType)
        assert t.element == U

    def test_tuple_type(self):
        t = tuple_of(U, set_of(U))
        assert t.arity == 2
        assert t.component(1) == U
        assert t.component(2) == set_of(U)

    def test_tuple_component_out_of_range(self):
        t = tuple_of(U, U)
        with pytest.raises(TypeError_):
            t.component(3)
        with pytest.raises(TypeError_):
            t.component(0)

    def test_empty_tuple_rejected(self):
        with pytest.raises(TypeError_):
            TupleType(())

    def test_non_type_components_rejected(self):
        with pytest.raises(TypeError_):
            SetType("U")  # type: ignore[arg-type]
        with pytest.raises(TypeError_):
            TupleType((U, "U"))  # type: ignore[arg-type]

    def test_immutability(self):
        t = set_of(U)
        with pytest.raises(AttributeError):
            t.element = U  # type: ignore[misc]


class TestStructuralEquality:
    def test_equal_types(self):
        assert parse_type("{[U,U]}") == set_of(tuple_of(U, U))

    def test_distinct_types(self):
        assert parse_type("{U}") != parse_type("{{U}}")
        assert parse_type("[U,U]") != parse_type("[U,U,U]")

    def test_hashable_in_sets(self):
        types = {parse_type("{U}"), set_of(U), parse_type("[U,U]")}
        assert len(types) == 2


class TestMeasures:
    """Set height and tuple width (the <i,k> machinery)."""

    @pytest.mark.parametrize("text,height,width", [
        ("U", 0, 0),
        ("{U}", 1, 0),
        ("{{U}}", 2, 0),
        ("[U,U]", 0, 2),
        ("[U,U,U]", 0, 3),
        ("{[U,U]}", 1, 2),
        ("[{U},{U}]", 1, 2),
        # The paper's running example: set height 2, tuple width 2.
        ("{[U,{[U,U]}]}", 2, 2),
        ("[U,{U}]", 1, 2),
    ])
    def test_height_and_width(self, text, height, width):
        t = parse_type(text)
        assert t.set_height == height
        assert t.tuple_width == width

    def test_ik_type_check(self):
        t = parse_type("{[U,{[U,U]}]}")
        assert t.is_ik_type(2, 2)
        assert t.is_ik_type(3, 5)
        assert not t.is_ik_type(1, 2)
        assert not t.is_ik_type(2, 1)

    def test_non_trivial(self):
        assert parse_type("{[U,U]}").is_non_trivial()
        assert not parse_type("{U}").is_non_trivial()   # width < 2
        assert not parse_type("[U,U]").is_non_trivial()  # height < 1

    @given(small_types())
    def test_subtypes_include_self_and_leaves(self, typ):
        subs = list(typ.subtypes())
        assert subs[0] == typ
        assert U in subs

    @given(small_types())
    def test_height_bounded_by_subtypes(self, typ):
        assert typ.set_height == max(
            s.set_height for s in typ.subtypes()
        )


class TestParsing:
    @pytest.mark.parametrize("text", [
        "U", "{U}", "[U,U]", "{[U,{[U,U]}]}", "[{U}, {U}]",
        "  { [ U , U ] }  ",
    ])
    def test_roundtrip(self, text):
        t = parse_type(text)
        assert parse_type(repr(t)) == t

    @pytest.mark.parametrize("bad", [
        "", "V", "{U", "[U]extra", "{}", "[]", "[U,]", "U}",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(TypeError_):
            parse_type(bad)

    def test_as_type_passthrough(self):
        t = set_of(U)
        assert as_type(t) is t
        assert as_type("{U}") == t
        with pytest.raises(TypeError_):
            as_type(42)  # type: ignore[arg-type]


class TestTypeTree:
    def test_paper_example_tree(self):
        """The labelled-tree figure for {[U,{[U,U]}]}."""
        tree = format_type_tree(parse_type("{[U,{[U,U]}]}"))
        lines = tree.splitlines()
        assert lines[0].strip().startswith("(+)")          # root set node
        assert lines[1].strip().startswith("[x] tuple/2")  # tuple of width 2
        assert sum("[] U" in line for line in lines) == 3  # three leaves

    def test_atom_tree(self):
        assert format_type_tree(U) == "[] U"
