"""Tests for the EF games and the CALC vs CALC+IFP separation ([GV90],
cited before Proposition 5.2).

The classic pair: one 6-cycle vs two disjoint 3-cycles.  The duplicator
wins the 2-round game (so no quantifier-rank-2 sentence distinguishes
them), the spoiler wins at 3 rounds, and a *fixpoint* query (strong
connectivity via TC) tells them apart — recursion buys power the plain
calculus lacks.
"""

import pytest

from repro.core.builder import V, exists, forall, rel
from repro.core.evaluation import evaluate, evaluate_formula
from repro.games import GameError, duplicator_wins, partially_isomorphic
from repro.objects import atom, database_schema, instance
from repro.workloads import atoms_universe, transitive_closure_query


def _cycle_edges(n, prefix):
    atoms = atoms_universe(n, prefix=prefix)
    return list(zip(atoms, atoms[1:])) + [(atoms[-1], atoms[0])]


@pytest.fixture
def c6():
    schema = database_schema(G=["U", "U"])
    return instance(schema, G=_cycle_edges(6, "a"))


@pytest.fixture
def c33():
    schema = database_schema(G=["U", "U"])
    return instance(schema, G=_cycle_edges(3, "a") + _cycle_edges(3, "b"))


class TestGameMechanics:
    def test_identical_structures_always_win(self, c6):
        assert duplicator_wins(c6, c6, rounds=3)

    def test_schema_mismatch_rejected(self, c6):
        other = instance(database_schema(H=["U", "U"]), H=[("a", "b")])
        with pytest.raises(GameError):
            duplicator_wins(c6, other, rounds=1)

    def test_partial_isomorphism_atoms(self, c6, c33):
        from repro.objects.types import U

        a0 = atom("a00")
        # single pebbles: both are nodes with an outgoing edge - no
        # atomic difference is visible with one pebble.
        assert partially_isomorphic(
            [(a0, U)], c6, [(a0, U)], c33)

    def test_partial_isomorphism_detects_edges(self, c6, c33):
        from repro.objects.types import U

        # In C6, a00 -> a01; in C3+C3, a00 -> a01 as well: consistent.
        pair_a = [(atom("a00"), U), (atom("a01"), U)]
        assert partially_isomorphic(pair_a, c6, pair_a, c33)
        # But (a00, a02): C6 has no edge a00->a02, C3 has a02->a00 edge
        # differences show up in the profile either way:
        pair_b = [(atom("a00"), U), (atom("a02"), U)]
        profile_differs = not partially_isomorphic(pair_b, c6, pair_b, c33)
        assert isinstance(profile_differs, bool)


class TestClassicSeparation:
    def test_duplicator_wins_two_rounds(self, c6, c33):
        assert duplicator_wins(c6, c33, rounds=1)
        assert duplicator_wins(c6, c33, rounds=2)

    def test_spoiler_wins_three_rounds(self, c6, c33):
        assert not duplicator_wins(c6, c33, rounds=3)

    def test_rank2_sentences_cannot_distinguish(self, c6, c33):
        """Sanity: concrete quantifier-rank-2 sentences agree on the
        pair, as the 2-round game predicts."""
        x, y = V("x", "U"), V("y", "U")
        G = rel("G")
        sentences = [
            exists(x, exists(y, G(x, y))),                  # has an edge
            forall(x, exists(y, G(x, y))),                  # total out-degree
            exists(x, forall(y, G(x, y).implies(~G(y, x)))),  # no 2-cycles out of some x
            forall(x, ~G(x, x)),                            # irreflexive
        ]
        for sentence in sentences:
            assert (evaluate_formula(sentence, c6)
                    == evaluate_formula(sentence, c33)), sentence

    def test_fixpoint_query_distinguishes(self, c6, c33):
        """Strong connectivity via IFP: true of C6, false of C3+C3 —
        the power the plain calculus lacks at this rank."""
        tc = transitive_closure_query("U")
        pairs_c6 = evaluate(tc, c6)
        pairs_c33 = evaluate(tc, c33)
        # C6: every ordered pair of its 6 nodes is connected.
        assert len(pairs_c6) == 36
        # C3+C3: only within components: 2 * 9 pairs.
        assert len(pairs_c33) == 18

    def test_larger_cycles_need_more_rounds(self):
        """C8 vs C4+C4: still 2-round indistinguishable (the radius of
        atomic differences grows with the cycles)."""
        schema = database_schema(G=["U", "U"])
        c8 = instance(schema, G=_cycle_edges(8, "a"))
        c44 = instance(schema, G=_cycle_edges(4, "a") + _cycle_edges(4, "b"))
        assert duplicator_wins(c8, c44, rounds=2)


class TestSetTypedPebbles:
    def test_set_pebbles_on_tiny_structures(self):
        """The [GV90] extension: pebbles of higher types.  A structure
        whose relation stores one set vs one storing another: a single
        {U}-pebble round separates them via the stored-relation fact."""
        schema = database_schema(R=["{U}"])
        inst_a = instance(schema, R=[({"a", "b"},)])
        inst_b = instance(schema, R=[({"a"},)])
        # One round with a {U} pebble: spoiler plays the stored set of A;
        # duplicator has no value with the same R-membership profile
        # unless B stores a set with the same cardinality-profile — it
        # does store one, and R(x) holds for it too, so atomically they
        # match; equality with other pebbles never comes up in 1 round.
        assert duplicator_wins(inst_a, inst_b, rounds=1,
                               pebble_types=("{U}",))
        # Two rounds: spoiler plays {a} in A (not in R(A)); the
        # duplicator's answers in B all fail some atomic profile.
        assert not duplicator_wins(inst_a, inst_b, rounds=2,
                                   pebble_types=("{U}", "U"))
