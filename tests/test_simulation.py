"""Tests for the Theorem 4.1 simulation pipeline (experiments E11, E12)."""

import pytest

from repro.machines import (
    SimulationError,
    TMSimulation,
    copy_machine,
    erase_machine,
    identity_machine,
    initial_configuration_rows,
    simulate_query,
)
from repro.machines.turing import BLANK, TuringMachine, Transition
from repro.objects import AtomOrder, database_schema, encode_instance, instance

TAPE_ALPHABET = set("01#[]{}GP")


@pytest.fixture
def tiny_graph():
    schema = database_schema(G=["U", "U"])
    return instance(schema, G=[("a", "b")])


class TestPhaseDagger:
    """Phase (†): the initial configuration in R_M."""

    def test_initial_rows_spell_the_encoding(self, tiny_graph):
        machine = identity_machine(TAPE_ALPHABET)
        simulation = TMSimulation(machine, tiny_graph)
        rows = simulation.initial_rows()
        by_cell = sorted(rows, key=lambda r: simulation.index_rank(r[1]))
        word = "".join(r[2] for r in by_cell)
        assert word == encode_instance(tiny_graph)

    def test_head_marker_on_cell_zero(self, tiny_graph):
        machine = identity_machine(TAPE_ALPHABET)
        simulation = TMSimulation(machine, tiny_graph)
        rows = simulation.initial_rows()
        marked = [r for r in rows if r[3] != ""]
        assert len(marked) == 1
        assert simulation.index_rank(marked[0][1]) == 0
        assert marked[0][3] == machine.initial_state

    def test_figure1_instance_configuration(self, figure1_instance):
        """The paper's configuration-representation figure: the Figure 1
        instance laid out in R_M with m-tuple indices (m = 4 here, as in
        the paper's illustration)."""
        machine = identity_machine(TAPE_ALPHABET)
        rows = initial_configuration_rows(machine, figure1_instance)
        simulation = TMSimulation(machine, figure1_instance)
        assert simulation.index_arity == 4
        word = "".join(
            r[2] for r in sorted(rows,
                                 key=lambda r: simulation.index_rank(r[1]))
        )
        assert word.startswith("P[01#{00#01}")


class TestPhaseDoubleDagger:
    """Phase (‡): the inflationary iteration tracks the machine exactly."""

    def test_identity_roundtrip(self, figure1_instance, figure1_schema):
        machine = identity_machine(TAPE_ALPHABET)
        result = simulate_query(machine, figure1_instance,
                                output_schema=figure1_schema)
        assert result.output == figure1_instance
        assert result.steps == 0

    def test_erase(self, tiny_graph):
        machine = erase_machine(TAPE_ALPHABET)
        result = simulate_query(machine, tiny_graph)
        assert result.final_tape == ""
        assert result.steps == len(encode_instance(tiny_graph)) + 1

    def test_copy_full_trace_crosscheck(self, tiny_graph):
        """Every simulated configuration equals the native TM trace —
        state, head position and every stored cell."""
        machine = copy_machine(TAPE_ALPHABET | {":"})
        simulation = TMSimulation(machine, tiny_graph, max_steps=200_000)
        final_rows = None
        for stage_rows in simulation.stages():
            final_rows = stage_rows
        assert final_rows is not None
        native = list(machine.trace(encode_instance(tiny_graph)))
        for time, config in enumerate(native):
            rows_t = [r for r in final_rows
                      if simulation.index_rank(r[0]) == time]
            assert rows_t, f"missing timestamp {time}"
            heads = [(simulation.index_rank(r[1]), r[3])
                     for r in rows_t if r[3] != ""]
            assert heads == [(config.head, config.state)]
            for row in rows_t:
                cell = simulation.index_rank(row[1])
                assert config.tape.get(cell, BLANK) == row[2]

    def test_inflationary_rows_accumulate(self, tiny_graph):
        """R_M keeps all timestamps (the paper's reason for timestamps:
        IFP cannot delete)."""
        machine = erase_machine(TAPE_ALPHABET)
        result = simulate_query(machine, tiny_graph)
        timestamps = {r[0] for r in result.rows}
        assert len(timestamps) == result.steps + 1


class TestEndToEnd:
    def test_boolean_query_via_parity(self):
        """A machine deciding a property of the encoding, used as a
        boolean query (accept iff even number of '1' bits)."""
        schema = database_schema(G=["U", "U"])
        # Map the encoding to 0/1 only: use a wrapper machine that treats
        # non-binary symbols as 0s.
        transitions = {
            ("even", "1"): Transition("odd", BLANK, "R"),
            ("odd", "1"): Transition("even", BLANK, "R"),
        }
        for symbol in TAPE_ALPHABET - {"1"}:
            transitions[("even", symbol)] = Transition("even", BLANK, "R")
            transitions[("odd", symbol)] = Transition("odd", BLANK, "R")
        transitions[("even", BLANK)] = Transition("yes", "1", "S")
        transitions[("odd", BLANK)] = Transition("no", BLANK, "S")
        machine = TuringMachine("enc-parity", transitions, "even",
                                accept_states={"yes"}, reject_states={"no"})
        inst = instance(schema, G=[("a", "b")])
        result = simulate_query(machine, inst)
        native = machine.run(encode_instance(inst))
        assert result.final_state == native.state
        assert result.final_tape == native.output

    def test_genericity_over_order_choice(self, figure1_instance,
                                          figure1_schema):
        """Theorem 4.1 existentially quantifies the order <_U; for a
        generic query (here: identity) the decoded answer must not
        depend on which enumeration is chosen."""
        machine = identity_machine(TAPE_ALPHABET)
        outputs = []
        for labels in ("abc", "cab", "bca"):
            order = AtomOrder.from_labels(labels)
            result = simulate_query(machine, figure1_instance,
                                    output_schema=figure1_schema,
                                    order=order)
            outputs.append(result.output)
        assert outputs[0] == outputs[1] == outputs[2] == figure1_instance


class TestGuards:
    def test_single_atom_rejected(self):
        schema = database_schema(R=["U"])
        inst = instance(schema, R=[("a",)])
        with pytest.raises(SimulationError):
            TMSimulation(identity_machine(TAPE_ALPHABET), inst)

    def test_left_edge_violation_detected(self, tiny_graph):
        machine = TuringMachine(
            "left", {("q", s): Transition("q", s, "L")
                     for s in TAPE_ALPHABET},
            initial_state="q",
        )
        with pytest.raises(SimulationError):
            TMSimulation(machine, tiny_graph)

    def test_index_arity_scales_with_run_length(self, tiny_graph):
        short = TMSimulation(identity_machine(TAPE_ALPHABET), tiny_graph)
        long = TMSimulation(copy_machine(TAPE_ALPHABET | {":"}), tiny_graph,
                            max_steps=200_000)
        assert long.index_arity > short.index_arity
