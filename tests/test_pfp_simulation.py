"""Tests for the PSPACE (PFP) simulation of Theorem 4.1(3).

"The difference lies in the fact that the CALC+PFP computation needs not
be inflationary ... only the tuples corresponding to the *current*
configuration of M are kept in R_M, so no timestamping is required."
"""

import pytest

from repro.machines import (
    PFPSimulation,
    copy_machine,
    identity_machine,
    simulate_query,
    simulate_query_pfp,
)
from repro.machines.turing import BLANK
from repro.objects import database_schema, encode_instance, instance

TAPE_ALPHABET = set("01#[]{}GP:")


@pytest.fixture
def tiny_graph():
    schema = database_schema(G=["U", "U"])
    return instance(schema, G=[("a", "b")])


class TestPFPSimulation:
    def test_identity_roundtrip(self, figure1_instance, figure1_schema):
        machine = identity_machine(TAPE_ALPHABET)
        result = simulate_query_pfp(machine, figure1_instance,
                                    output_schema=figure1_schema)
        assert result.output == figure1_instance

    def test_copy_agrees_with_native(self, tiny_graph):
        machine = copy_machine(TAPE_ALPHABET)
        result = simulate_query_pfp(machine, tiny_graph, max_steps=500_000)
        native = machine.run(encode_instance(tiny_graph))
        assert result.final_tape == native.output
        assert result.final_state == native.state

    def test_agrees_with_ifp_simulation(self, tiny_graph):
        machine = copy_machine(TAPE_ALPHABET)
        via_ifp = simulate_query(machine, tiny_graph, max_steps=500_000)
        via_pfp = simulate_query_pfp(machine, tiny_graph, max_steps=500_000)
        assert via_ifp.final_tape == via_pfp.final_tape
        assert via_ifp.final_state == via_pfp.final_state

    def test_no_timestamps_space_saving(self, tiny_graph):
        """The paper's simplification, quantified: PFP's R_M holds one
        configuration; IFP's holds the whole timestamped history."""
        machine = copy_machine(TAPE_ALPHABET)
        via_ifp = simulate_query(machine, tiny_graph, max_steps=500_000)
        via_pfp = simulate_query_pfp(machine, tiny_graph, max_steps=500_000)
        assert via_pfp.rm_cardinality < via_ifp.rm_cardinality / 10
        # PFP rows are (2m+1)-ary: cell tuple + symbol + marker
        row = next(iter(via_pfp.rows))
        assert len(row) == 3

    def test_halting_configuration_is_fixed_point(self, tiny_graph):
        machine = identity_machine(TAPE_ALPHABET)
        simulation = PFPSimulation(machine, tiny_graph)
        initial = simulation.stage(frozenset())
        assert simulation.stage(initial) == initial  # halts immediately

    def test_stage_tracks_native_trace(self, tiny_graph):
        """Each PFP stage is exactly the machine's configuration at that
        step (no history)."""
        machine = copy_machine(TAPE_ALPHABET)
        simulation = PFPSimulation(machine, tiny_graph, max_steps=500_000)
        rows = simulation.stage(frozenset())
        for config in machine.trace(encode_instance(tiny_graph)):
            _, cells, head, state = simulation._configuration(rows)
            assert state == config.state
            assert head == config.head
            for rank, symbol in cells.items():
                assert config.tape.get(rank, BLANK) == symbol
            rows = simulation.stage(rows)
