"""Tests for JSON serialisation and the command-line interface."""

import json

import pytest
from hypothesis import given, settings

from repro.cli import main
from repro.objects import (
    SerializationError,
    atom,
    cset,
    ctuple,
    database_schema,
    dump_instance,
    instance,
    instance_from_json,
    instance_to_json,
    load_instance,
    schema_from_json,
    schema_to_json,
    value_from_json,
    value_to_json,
)

from .conftest import small_types, values_of_type


class TestValueRoundtrip:
    def test_atom(self):
        assert value_from_json(value_to_json(atom("a"))) == atom("a")
        assert value_from_json(value_to_json(atom(7))) == atom(7)

    def test_nested(self):
        value = ctuple(atom("a"), cset(cset(atom("b")), cset()))
        assert value_from_json(value_to_json(value)) == value

    @given(small_types().flatmap(values_of_type))
    @settings(max_examples=60)
    def test_roundtrip_property(self, value):
        document = value_to_json(value)
        json.dumps(document)  # must be JSON-serialisable
        assert value_from_json(document) == value

    def test_set_json_is_canonical(self):
        v1 = cset(atom("a"), atom("b"))
        v2 = cset(atom("b"), atom("a"))
        assert json.dumps(value_to_json(v1)) == json.dumps(value_to_json(v2))

    @pytest.mark.parametrize("bad", [
        {"x": 1}, {"a": True}, {"t": []}, {"s": "nope"}, [], "raw",
        {"a": 1, "t": []},
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(SerializationError):
            value_from_json(bad)


class TestSchemaAndInstance:
    def test_schema_roundtrip(self):
        schema = database_schema(G=["{U}", "{U}"], R=["[U,{U}]"])
        assert schema_from_json(schema_to_json(schema)) == schema

    def test_instance_roundtrip(self, figure1_instance):
        document = instance_to_json(figure1_instance)
        json.dumps(document)
        assert instance_from_json(document) == figure1_instance

    def test_file_roundtrip(self, tmp_path, figure1_instance):
        path = tmp_path / "inst.json"
        dump_instance(figure1_instance, str(path))
        assert load_instance(str(path)) == figure1_instance

    def test_missing_schema_rejected(self):
        with pytest.raises(SerializationError):
            instance_from_json({"data": {}})


class TestCLI:
    @pytest.fixture
    def instance_file(self, tmp_path):
        schema = database_schema(G=["{U}", "{U}"])
        a, b, c = cset(atom("a")), cset(atom("b")), cset(atom("c"))
        sample = instance(schema, G=[(a, b), (b, c)])
        path = tmp_path / "graph.json"
        dump_instance(sample, str(path))
        return str(path)

    def test_encode(self, instance_file, capsys):
        assert main(["encode", instance_file]) == 0
        out = capsys.readouterr().out
        assert out.strip() == "G[{00}#{01}][{01}#{10}]"

    def test_query_rr(self, instance_file, capsys):
        code = main([
            "query", instance_file,
            "{[x:{U}, y:{U}] | ifp[S(x:{U}, y:{U})]"
            "(G(x,y) or exists z:{U} (S(x,z) and G(z,y)))(x, y)}",
            "--mode", "rr",
        ])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3  # the three closure pairs

    def test_query_active(self, instance_file, capsys):
        code = main(["query", instance_file,
                     "{[x:{U}] | exists y:{U} (G(x, y))}",
                     "--mode", "active"])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2

    def test_query_rr_rejects_unsafe(self, instance_file, capsys):
        # Not-RR is a *finding* (exit 1), not a usage error (exit 2).
        code = main(["query", instance_file,
                     "{[x:{U}] | not G(x, x)}", "--mode", "rr"])
        assert code == 1

    def test_analyze(self, instance_file, capsys):
        code = main(["analyze", instance_file,
                     "{[x:{U}] | exists y:{U} (G(x, y))}"])
        assert code == 0
        out = capsys.readouterr().out
        assert "range-restricted: True" in out

    def test_analyze_non_rr(self, instance_file, capsys):
        code = main(["analyze", instance_file,
                     "{[x:{U}] | not G(x, x)}"])
        assert code == 1
        assert "violation" in capsys.readouterr().out

    def test_density(self, instance_file, capsys):
        code = main(["density", instance_file, "--i", "1", "--k", "2",
                     "--degree", "1", "--coefficient", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sparse" in out

    def test_example_emits_loadable_instance(self, capsys, tmp_path):
        assert main(["example"]) == 0
        document = json.loads(capsys.readouterr().out)
        inst = instance_from_json(document)
        assert inst.relation("G").cardinality == 2
