"""Tests for the formatter: parse(format(q)) == q semantically."""

import pytest

from repro.core.format import format_formula, format_query, format_value
from repro.core.evaluation import evaluate
from repro.core.parser import parse_query
from repro.objects import atom, cset, ctuple, database_schema, instance
from repro.workloads import (
    bipartite_query,
    cyclic_nodes_query,
    nest_query,
    nest_query_ifp,
    pfp_transitive_closure_query,
    same_members_query,
    transitive_closure_query,
    transitive_closure_term_query,
)


class TestValueFormatting:
    def test_atom(self):
        assert format_value(atom("a")) == "'a'"

    def test_nested(self):
        value = ctuple(atom("a"), cset(atom("b"), atom("c")))
        assert format_value(value) == "['a', {'b', 'c'}]"

    def test_canonical_set_order(self):
        assert (format_value(cset(atom("b"), atom("a")))
                == format_value(cset(atom("a"), atom("b"))))


QUERY_FACTORIES = [
    transitive_closure_query,
    transitive_closure_term_query,
    pfp_transitive_closure_query,
    cyclic_nodes_query,
    nest_query,
    nest_query_ifp,
    same_members_query,
    bipartite_query,
]


class TestRoundtrip:
    @pytest.mark.parametrize("factory", QUERY_FACTORIES,
                             ids=[f.__name__ for f in QUERY_FACTORIES])
    def test_format_then_parse_is_parseable(self, factory):
        text = format_query(factory())
        parsed = parse_query(text)
        assert parsed.head_names == factory().head_names

    def test_semantic_roundtrip_tc(self, set_graph_instance):
        original = transitive_closure_query()
        reparsed = parse_query(format_query(original))
        assert (evaluate(original, set_graph_instance)
                == evaluate(reparsed, set_graph_instance))

    def test_semantic_roundtrip_nest(self):
        schema = database_schema(P=["U", "U"])
        inst = instance(schema, P=[("a", "b"), ("a", "c"), ("b", "a")])
        for factory in (nest_query, nest_query_ifp):
            original = factory()
            reparsed = parse_query(format_query(original))
            assert evaluate(original, inst) == evaluate(reparsed, inst)

    def test_semantic_roundtrip_bipartite(self):
        from repro.workloads import cycle_graph

        original = bipartite_query()
        reparsed = parse_query(format_query(original))
        for n in (4, 5):
            inst = cycle_graph(n)
            assert evaluate(original, inst) == evaluate(reparsed, inst)

    def test_formula_with_constants(self):
        from repro.core.builder import C, V, eq, member
        from repro.core.parser import parse_formula

        f = eq(V("x", "{U}"), C({"a", "b"})) & member(C("c"), V("x", "{U}"))
        text = format_formula(f)
        reparsed = parse_formula(text)
        assert format_formula(reparsed) == text
