"""Remark 4.1, executed: multi-sorted density on a schedule database.

"A database involving employees, days-of-the-week, and departments might
be sparse with respect to sets of employees but dense with respect to
sets of days-of-the-week ... queries may use variables of type set of
days-of-the-week without a prohibitive cost in complexity, but
quantifying over sets of employees is not recommended."

The paper leaves the multi-sorted case as future work; this example runs
our implementation of it on exactly that scenario.

Run:  python examples/multi_sorted_schedule.py
"""

import time

from repro.analysis import (
    SortAssignment,
    is_dense_for_sorted_type,
    is_sparse_for_sorted_type,
    log2_sorted_domain_cardinality,
    parse_sorted_type,
    sorted_domain_cardinality,
    sorted_subobjects,
)
from repro.core import Evaluator, V, exists, forall, query, rel, subset
from repro.objects import materialize_domain, parse_type
from repro.workloads import schedule_instance


def main() -> None:
    inst = schedule_instance(130, n_days=7, n_teams=3)
    sorts = SortAssignment.by_prefix({"e": "emp", "d": "day"}, inst.atoms())
    print(f"schedule database: {inst.cardinality} tuples, "
          f"sorts {sorts.counts()}")

    day_sets = parse_sorted_type("{U@day}")
    emp_sets = parse_sorted_type("{U@emp}")
    counts = sorts.counts()

    for name, styp in (("{U@day}", day_sets), ("{U@emp}", emp_sets)):
        used = len(sorted_subobjects(inst, styp, sorts))
        log_dom = log2_sorted_domain_cardinality(styp, counts)
        dense = is_dense_for_sorted_type(inst, styp, sorts,
                                         degree=1, coefficient=2)
        sparse = is_sparse_for_sorted_type(inst, styp, sorts,
                                           degree=1, coefficient=2)
        print(f"\n  {name}: {used} objects used of 2^{log_dom:.0f} possible")
        print(f"    dense: {dense}   sparse: {sparse}")

    # Quantify over the DENSE sort: a universal day-set quantifier,
    # swept in full (tautological body), at database-proportionate cost.
    s, e = V("s", "{U}"), V("e", "U")
    q = query([("e", "U")],
              exists(s, rel("Schedule")(e, s))
              & forall(V("s2", "{U}"),
                       subset(V("s2", "{U}"), V("s2", "{U}"))))
    day_atoms = sorted(sorts.atoms_of("day"), key=lambda a: str(a.label))
    evaluator = Evaluator(
        inst.schema,
        variable_ranges={
            "s2": materialize_domain(parse_type("{U}"), day_atoms),
            "s": [row.component(2) for row in inst.relation("Schedule")],
            "e": sorted(sorts.atoms_of("emp"), key=lambda a: str(a.label)),
        },
        max_product=10 ** 8,
    )
    start = time.perf_counter()
    answer = evaluator.evaluate(q, inst)
    elapsed = time.perf_counter() - start
    print(f"\nuniversal quantifier over ALL {2 ** 7} day-sets: "
          f"{elapsed:.3f}s, {len(answer)} employees returned")

    emp_log_dom = log2_sorted_domain_cardinality(emp_sets, counts)
    print(f"the same sweep over employee-sets would visit 2^{emp_log_dom:.0f} "
          "candidates — Remark 4.1's 'not recommended', quantified.")
    print("\nmulti_sorted_schedule OK")


if __name__ == "__main__":
    main()
