"""Example 4.2 — density as an integrity constraint on a course catalog.

A database stores the sets of classes students may take.  With no
prerequisite structure every combination occurs — the instance family is
*dense* w.r.t. the type "set of classes", and quantifying over that type
costs no more than scanning the database (Theorem 4.1 territory).  With
tight prerequisites only polynomially many sets occur — *sparse* — and a
set quantifier's domain dwarfs the database (Remark 4.1's warning).

Run:  python examples/course_catalog.py
"""

import time

from repro.analysis import (
    instance_stats,
    is_dense_for_type,
    is_sparse_for_type,
    log2_domain_cardinality,
    subobject_counts,
)
from repro.core import V, eq, evaluate, exists, forall, member, query, rel, subset
from repro.objects import parse_type
from repro.workloads import course_catalog_dense, course_catalog_sparse

SET_OF_CLASSES = parse_type("{U}")


def closed_under_subsets_query():
    """Is the catalog closed downward?  (Every subset of a valid class
    combination is valid.)  Quantifies over two set-of-classes
    variables — fine on dense catalogs, expensive on sparse ones."""
    s, t = V("s", "{U}"), V("t", "{U}")
    witness = V("w", "{U}")
    return query(
        [("ok", "{U}")],
        rel("Takes")(V("ok", "{U}"))
        & forall(s, rel("Takes")(s).implies(
            forall(t, subset(t, s).implies(rel("Takes")(t))))),
    )


def report(name: str, inst) -> None:
    stats = instance_stats(inst)
    counts = subobject_counts(inst)
    used = counts.get(SET_OF_CLASSES, 0)
    possible_log2 = log2_domain_cardinality(SET_OF_CLASSES, stats.n_atoms)
    print(f"\n{name}")
    print(f"  combinations stored : {used}")
    print(f"  combinations possible: 2^{possible_log2:.0f}")
    dense = is_dense_for_type(inst, SET_OF_CLASSES, degree=1, coefficient=2)
    sparse = is_sparse_for_type(inst, SET_OF_CLASSES, degree=2, coefficient=1)
    print(f"  dense w.r.t. set-of-classes : {dense}")
    print(f"  sparse w.r.t. set-of-classes: {sparse}")

    start = time.perf_counter()
    answer = evaluate(closed_under_subsets_query(), inst,
                      max_domain_size=10 ** 6)
    elapsed = time.perf_counter() - start
    print(f"  downward-closure check: {'closed' if answer else 'not closed'} "
          f"({elapsed:.3f}s with set quantifiers over 2^{possible_log2:.0f} "
          "candidates)")


def main() -> None:
    print("Example 4.2: type usage as an integrity constraint")

    # No prerequisites: all 2^n combinations occur -> dense.
    dense_catalog = course_catalog_dense(6)
    report("catalog without prerequisites (6 classes)", dense_catalog)

    # Tight prerequisites: at most 2 classes at once -> sparse.
    sparse_catalog = course_catalog_sparse(6, max_simultaneous=2)
    report("catalog with prerequisites (<= 2 simultaneous)", sparse_catalog)

    print(
        "\nRemark 4.1's advice, observed: on the dense catalog the set\n"
        "quantifier's domain is the same size as the database, so the\n"
        "check is proportionate; on the sparse catalog the same check\n"
        "sweeps a domain exponentially larger than the data — quantify\n"
        "over sparse types only when you must, or range-restrict."
    )
    print("\ncourse_catalog OK")


if __name__ == "__main__":
    main()
