"""Theorem 4.1's machinery, end to end: how CALC+IFP captures PTIME.

The constructive proof has four moving parts, each runnable here:

1. an order on atoms induces orders on every complex object domain
   (Definition 4.2 / Lemma 4.3 — shown natively and as a CALC formula);
2. CODE relations spell out object encodings (Lemma 4.4 — the paper's
   5-constant CODE_U table is reproduced);
3. a PTIME Turing machine runs *inside an inflationary fixpoint* over
   the relation R_M (timestamps + m-tuple cell ids);
4. the final tape decodes back to the answer instance.

Run:  python examples/ptime_capture.py
"""

from repro.core.evaluation import Evaluator
from repro.core.order_formulas import less_than_formula, with_order_relation
from repro.core.syntax import Var
from repro.machines import (
    TMSimulation,
    code_u_table,
    copy_machine,
    identity_machine,
    simulate_query,
)
from repro.objects import (
    AtomOrder,
    Instance,
    compare,
    database_schema,
    encode_instance,
    instance,
    materialize_domain,
    parse_type,
    relation,
    sorted_values,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Induced orders
    # ------------------------------------------------------------------
    order = AtomOrder.from_labels("abc")
    set_type = parse_type("{U}")
    domain = sorted_values(materialize_domain(set_type, order.atoms), order)
    print("dom({U}) in the order induced by a < b < c:")
    print(" ", " < ".join(str(v) for v in domain))

    # ... and the same order defined by a CALC formula (Lemma 4.3):
    base = database_schema(Seed=["U"])
    seeded = with_order_relation(
        Instance(base, {"Seed": [(a,) for a in order.atoms]}), order)
    phi = less_than_formula(set_type)(Var("x", set_type), Var("y", set_type))
    evaluator = Evaluator(seeded.schema, max_domain_size=10 ** 6)
    agree = all(
        evaluator.evaluate_formula(
            phi, seeded, {"x": left, "y": right},
            free_variable_types={"x": set_type, "y": set_type})
        == (compare(left, right, order) < 0)
        for left in domain for right in domain
    )
    print(f"  Lemma 4.3 formula agrees with the native order: {agree}")

    # ------------------------------------------------------------------
    # 2. CODE_U (Lemma 4.4's figure)
    # ------------------------------------------------------------------
    print("\nCODE_U for five constants (the paper's table):")
    print("  constant index digit")
    for row in code_u_table(AtomOrder.from_labels("abcde")):
        print(f"  {str(row.obj):>8} {str(row.index[0]):>5} {row.symbol:>5}")

    # ------------------------------------------------------------------
    # 3. + 4. Simulate machines relationally and decode
    # ------------------------------------------------------------------
    schema = database_schema(relation("P", "U", "{U}", "[U,{U}]"))
    figure1 = instance(
        schema,
        P=[("b", {"a", "b"}, ("c", {"a", "c"})),
           ("c", {"c"}, ("a", {"b", "c"}))],
    )
    alphabet = set("01#[]{}P:")

    result = simulate_query(identity_machine(alphabet), figure1,
                            output_schema=schema)
    print(f"\nidentity query via R_M: decoded output == input: "
          f"{result.output == figure1} (m = {result.index_arity})")

    graph_schema = database_schema(G=["U", "U"])
    graph = instance(graph_schema, G=[("a", "b")])
    machine = copy_machine(set("01#[]{}G:"))
    simulation = TMSimulation(machine, graph, max_steps=500_000)
    outcome = simulation.run()
    native = machine.run(encode_instance(graph))
    print(f"copy machine: {outcome.steps} steps simulated inside IFP, "
          f"tape == native run: {outcome.final_tape == native.output}")
    print(f"  R_M holds {outcome.rm_cardinality} rows "
          f"({outcome.steps + 1} timestamped configurations, "
          f"cell ids are {outcome.index_arity}-tuples of atoms)")

    print("\nptime_capture OK")


if __name__ == "__main__":
    main()
