"""Quickstart: complex objects, the calculus, and tractable evaluation.

Walks the paper's running artefacts end to end:

1. build the Figure 1 instance and reproduce Figure 2's tape encoding;
2. run a first CALC query (active-domain semantics);
3. run a CALC+IFP fixpoint query;
4. evaluate it the tractable way (range restriction, Theorem 5.1).

Run:  python examples/quickstart.py
"""

from repro import (
    AtomOrder,
    atom,
    cset,
    database_schema,
    decode_instance,
    encode_instance,
    evaluate,
    evaluate_range_restricted,
    instance,
    parse_query,
    relation,
    transitive_closure_query,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The paper's Figure 1 instance: P[U, {U}, [U, {U}]]
    # ------------------------------------------------------------------
    schema = database_schema(relation("P", "U", "{U}", "[U,{U}]"))
    figure1 = instance(
        schema,
        P=[("b", {"a", "b"}, ("c", {"a", "c"})),
           ("c", {"c"}, ("a", {"b", "c"}))],
    )
    order = AtomOrder.from_labels("abc")
    encoded = encode_instance(figure1, order)
    print("Figure 2, regenerated:")
    print(" ", encoded)
    assert encoded == "P[01#{00#01}#[10#{00#10}]][10#{10}#[00#{01#10}]]"
    assert decode_instance(encoded, schema, order) == figure1
    print("  (decodes back to the Figure 1 instance)")

    # ------------------------------------------------------------------
    # 2. A first CALC query, in the textual syntax
    # ------------------------------------------------------------------
    keys_of_big_sets = parse_query(
        "{[x:U] | exists s:{U}, p:[U,{U}] (P(x, s, p) and 'a' in s)}"
    )
    answer = evaluate(keys_of_big_sets, figure1)
    print("\nKeys whose stored set contains 'a':",
          sorted(str(row) for row in answer))

    # ------------------------------------------------------------------
    # 3. A fixpoint query: Example 3.1's transitive closure
    # ------------------------------------------------------------------
    graph_schema = database_schema(G=["{U}", "{U}"])
    a, b, c = cset(atom("a")), cset(atom("b")), cset(atom("c"))
    graph = instance(graph_schema, G=[(a, b), (b, c)])
    tc = transitive_closure_query()
    closure = evaluate(tc, graph)
    print("\nTransitive closure over set-typed nodes:")
    for row in sorted(closure, key=str):
        print("  ", row)

    # ------------------------------------------------------------------
    # 4. The tractable route: range-restricted evaluation (Theorem 5.1)
    # ------------------------------------------------------------------
    report = evaluate_range_restricted(tc, graph)
    assert report.answer == closure
    print("\nRange-restricted evaluation agrees; derived range sizes:")
    for name, size in sorted(report.range_sizes.items()):
        print(f"   {name}: {size} candidate values")
    print("\nquickstart OK")


if __name__ == "__main__":
    main()
