"""Example 4.1 (VERSO) and Proposition 5.2 — living with sparse nesting.

VERSO-style nested relations key every nested set by an atomic value, so
the database is sparse w.r.t. its set types.  Two consequences, both
demonstrated:

* nest/unnest restructuring is cheap and range-restricted
  (Examples 5.1/5.3's nest, plus the algebra operators);
* fixpoints over the nested objects can be *eliminated*: encode each
  stored set as a tuple of atoms (the Q_T construction) and run the
  fixpoint at set height 0 (Proposition 5.2).

Run:  python examples/verso_nesting.py
"""

from repro.algebra import BaseRel, Nest, Unnest
from repro.analysis import SparseEncoding, is_sparse_for_type
from repro.core.safety import evaluate_range_restricted
from repro.objects import database_schema, instance, parse_type
from repro.workloads import (
    nest_query,
    nest_query_ifp,
    sparse_chain_family,
    transitive_closure_query,
    verso_instance,
)


def main() -> None:
    # ------------------------------------------------------------------
    # A VERSO-style relation: every key determines its nested set.
    # ------------------------------------------------------------------
    verso = verso_instance(6, values_per_key=2)
    print("VERSO relation R[U, {U}]:")
    for row in sorted(verso.relation("R"), key=str):
        print("  ", row)
    sparse = is_sparse_for_type(verso, parse_type("{U}"), degree=1,
                                coefficient=2)
    print(f"sparse w.r.t. {{U}} (keys determine sets): {sparse}")

    # ------------------------------------------------------------------
    # Restructuring: unnest, then re-nest three ways.
    # ------------------------------------------------------------------
    flat_rows = Unnest(BaseRel("R"), 2).evaluate(verso)
    print(f"\nunnest: {len(flat_rows)} flat (key, value) pairs")
    flat_schema = database_schema(P=["U", "U"])
    flat = instance(flat_schema, P=[tuple(row) for row in flat_rows])

    rule9 = evaluate_range_restricted(nest_query(), flat).answer
    ifp_term = evaluate_range_restricted(nest_query_ifp(), flat).answer
    algebra = Nest(BaseRel("P"), [1], [2]).evaluate(flat)
    assert rule9 == ifp_term
    assert frozenset(tuple(r.items) for r in rule9) == algebra
    print("re-nest: rule-9 calculus == IFP-term calculus == algebra "
          f"({len(rule9)} groups)")

    # ------------------------------------------------------------------
    # Proposition 5.2: eliminate the fixpoint's nesting on sparse input.
    # ------------------------------------------------------------------
    chain = sparse_chain_family(6)
    direct = evaluate_range_restricted(
        transitive_closure_query("{U}"), chain).answer

    encoding = SparseEncoding(chain)
    encoded = encoding.encode_instance()
    node_type = encoded.schema["G"].column_types[0]
    via_encoding = evaluate_range_restricted(
        transitive_closure_query(node_type), encoded).answer
    decoded = encoding.decode_rows(via_encoding)
    assert decoded == direct
    print(f"\nProposition 5.2 on a 6-node chain of singleton sets:")
    print(f"  direct TC over nested nodes : {len(direct)} pairs")
    print(f"  TC after Q_T tuple-encoding : identical "
          f"(nodes became {node_type!r}, set height dropped to "
          f"{encoded.schema.set_height})")
    print(f"  Q_T dictionary rows: {len(encoding.q_relation_rows())}")

    print("\nverso_nesting OK")


if __name__ == "__main__":
    main()
