"""Graph analysis with the fixpoint calculi (Section 3's examples).

Demonstrates, over graphs whose nodes are complex objects:

* Example 3.1's three transitive-closure formulations (IFP predicate,
  IFP term, cyclic nodes);
* the PFP variant and a genuinely diverging PFP query;
* the Section 3 bipartiteness test (a calculus query with set
  quantifiers, beyond range restriction);
* the Datalog rendering of the same closure, and the agreement of all
  engines.

Run:  python examples/graph_analysis.py
"""

from repro import cyclic_nodes_query, evaluate, evaluate_range_restricted
from repro.core import PFPDivergenceError, V, pfp, query, rel
from repro.datalog import Literal, Program, Rule, evaluate_inflationary
from repro.workloads import (
    bipartite_query,
    cycle_graph,
    pfp_transitive_closure_query,
    set_random_graph,
    transitive_closure_query,
    transitive_closure_term_query,
)


def main() -> None:
    graph = set_random_graph(3, 6, p=0.35, seed=41)
    print(f"graph: {graph.relation('G').cardinality} edges over "
          f"{len({r.component(1) for r in graph.relation('G')} | {r.component(2) for r in graph.relation('G')})} set-typed nodes")

    # -- Example 3.1, variant 1: IFP as a predicate --------------------
    closure = evaluate_range_restricted(transitive_closure_query(), graph)
    print(f"\nIFP predicate : |TC| = {len(closure.answer)}")

    # -- variant 2: IFP as a term (the whole closure as one object) ----
    packaged = evaluate_range_restricted(
        transitive_closure_term_query(), graph)
    (closure_object,) = next(iter(packaged.answer)).items
    print(f"IFP term      : one object holding {len(closure_object)} pairs")
    assert len(closure_object) == len(closure.answer)

    # -- variant 3: nodes on a cycle ------------------------------------
    cyclic = evaluate_range_restricted(cyclic_nodes_query(), graph)
    print(f"cyclic nodes  : {len(cyclic.answer)}")

    # -- PFP: same closure, plus a diverging query ----------------------
    pfp_closure = evaluate(pfp_transitive_closure_query(), graph)
    assert pfp_closure == closure.answer
    print("PFP variant   : agrees with IFP")

    x = V("x", "{U}")
    flip = pfp("S", [x], ~rel("S")(x))
    try:
        evaluate(query([x], flip(x)), graph)
    except PFPDivergenceError as error:
        print(f"PFP flip      : diverges as the theory predicts "
              f"(cycle period {error.period})")

    # -- Datalog agreement ----------------------------------------------
    program = Program(
        rules=[
            Rule(Literal("T", ["x", "y"]), [Literal("G", ["x", "y"])]),
            Rule(Literal("T", ["x", "y"]),
                 [Literal("T", ["x", "z"]), Literal("G", ["z", "y"])]),
        ],
        idb_types={"T": ["{U}", "{U}"]},
    )
    datalog_rows = evaluate_inflationary(program, graph)["T"]
    calc_rows = frozenset(tuple(r.items) for r in closure.answer)
    assert datalog_rows == calc_rows
    print("inf-Datalog   : agrees with CALC+IFP")

    # -- bipartiteness (flat graphs, set quantifiers) --------------------
    for n in (4, 5):
        answer = evaluate(bipartite_query(), cycle_graph(n))
        verdict = "bipartite" if answer else "NOT bipartite"
        print(f"C{n}            : {verdict}")

    print("\ngraph_analysis OK")


if __name__ == "__main__":
    main()
